module Isa = Deflection_isa.Isa
module Codec = Deflection_isa.Codec
module Cost = Deflection_isa.Cost
module Memory = Deflection_enclave.Memory
module Layout = Deflection_enclave.Layout
module Annot = Deflection_annot.Annot
module Telemetry = Deflection_telemetry.Telemetry
module Flight_recorder = Deflection_forensics.Flight_recorder
module Profiler = Deflection_forensics.Profiler
open Isa

type exit_reason =
  | Exited of int64
  | Policy_abort of Annot.abort_reason
  | Mem_fault of Memory.fault
  | Invalid_instruction of int
  | Div_by_zero of int
  | Div_overflow of int
  | Ocall_denied of int
  | Ocall_failed of int
  | Limit_exceeded
  | Fuel_exhausted

let pp_exit_reason fmt = function
  | Exited v -> Format.fprintf fmt "exited(%Ld)" v
  | Policy_abort r -> Format.fprintf fmt "policy-abort(%a)" Annot.pp_abort_reason r
  | Mem_fault f -> Format.fprintf fmt "fault(%a)" Memory.pp_fault f
  | Invalid_instruction a -> Format.fprintf fmt "invalid-instruction(%#x)" a
  | Div_by_zero a -> Format.fprintf fmt "div-by-zero(%#x)" a
  | Div_overflow a -> Format.fprintf fmt "div-overflow(%#x)" a
  | Ocall_denied n -> Format.fprintf fmt "ocall-denied(%d)" n
  | Ocall_failed n -> Format.fprintf fmt "ocall-failed(%d)" n
  | Limit_exceeded -> Format.fprintf fmt "instruction-limit-exceeded"
  | Fuel_exhausted -> Format.fprintf fmt "watchdog-fuel-exhausted"

let exit_reason_to_string r = Format.asprintf "%a" pp_exit_reason r

(* Instruction classes: the decode-side histogram of the paper's
   per-instruction instrumentation cost model. The counters are a plain
   array bump per step, cheap enough to stay on unconditionally. *)

let n_classes = 10

let class_names =
  [| "mov"; "stack"; "alu"; "div"; "branch"; "callret"; "indirect"; "float"; "ocall"; "misc" |]

let class_index = function
  | Mov _ | Lea _ -> 0
  | Push _ | Pop _ -> 1
  | Binop _ | Unop _ | Shift _ | Cmp _ | Test _ -> 2
  | Idiv _ -> 3
  | Jmp _ | Jcc _ -> 4
  | Call _ | Ret -> 5
  | JmpInd _ | CallInd _ -> 6
  | Fbin _ | Fcmp _ | Cvtsi2sd _ | Cvttsd2si _ | Fsqrt _ -> 7
  | Ocall _ -> 8
  | Nop | Hlt -> 9

type flags = { mutable zf : bool; mutable sf : bool; mutable cf : bool; mutable ovf : bool }

type t = {
  mem : Memory.t;
  regs : int64 array;
  flags : flags;
  mutable rip : int;
  mutable cycles : int;
  mutable instrs : int;
  mutable aexes : int;
  mutable ocalls : int;
  mutable next_aex : int;
  mutable issue_residue : int;  (* simple ops awaiting a shared issue cycle *)
  config : config;
  jitter_prng : Deflection_util.Prng.t;  (* AEX schedule jitter *)
  coloc_prng : Deflection_util.Prng.t;  (* co-location observations *)
  ocall : int -> t -> ocall_outcome;
  (* decode cache: address -> (instr, length), valid for [cache_gen] only —
     the whole table is dropped when the code generation moves, so stale
     decodes can neither be served nor accumulate *)
  cache : (int, Isa.instr * int) Hashtbl.t;
  mutable cache_gen : int;
  (* trace tier: entry pc -> compiled straight-line block ([None] negative-
     caches entries that must single-step, e.g. OCALL/HLT sites). Valid
     for [block_gen] only — invalidated exactly like the decode cache. *)
  blocks : (int, block option) Hashtbl.t;
  mutable block_gen : int;
  (* verified basic-block leaders (absolute pcs) exported by the verifier:
     compiled blocks never run across one, so join points are not
     re-discovered by duplicated suffix compilation *)
  leaders : (int, unit) Hashtbl.t;
  mutable trace_pc : int;  (* pc of the in-flight block op, for fault repair *)
  klass : int array;  (* per-class instruction counts, indexed by class_index *)
  tm : Telemetry.t;
  recorder : Flight_recorder.t;
  profiler : Profiler.t;
}

and ocall_outcome = Continue | Halt of exit_reason

and config = {
  instr_limit : int;
  aex_interval : int option;
  aex_seed : int64;
  colocated_prob : float;
  fuel : int option;
  tier : tier;
}

and tier = Step | Trace

(* A compiled block: fused closures plus the per-instruction metadata the
   dispatcher needs to repair counters when an op faults mid-block. The
   closure array can be shorter than [b_n] (superinstruction fusion), so
   repair is keyed on pc, never on closure index. *)
and block = {
  b_ops : (t -> unit) array;
  b_op_pcs : int array;  (* per closure: pc pinned into [trace_pc] before running it *)
  b_fall : int;  (* fall-through rip after the block, or -1 if the last op sets rip *)
  b_n : int;  (* instruction count *)
  b_pcs : int array;
  b_lens : int array;
  b_costs : int array;
  b_simple : bool array;
  b_klass : int array;
  b_sets_rip : bool array;  (* branch-type: the closure assigns the successor rip *)
  b_kidx : int array;  (* sparse class histogram: indices ... *)
  b_kcnt : int array;  (* ... and per-class counts, parallel arrays *)
  b_cycle_tot : int array;  (* whole-block cycle charge, by entry issue_residue *)
  b_exit_res : int array;  (* issue_residue after the block, by entry residue *)
  (* inline successor cache: block chaining skips the block-table lookup
     on hot edges. Chained pointers never outlive their generation — a
     code patch drops the whole table, and dispatch re-enters it through
     [lookup_block] (which revalidates) after any patch or single step. *)
  mutable b_s1_pc : int;
  mutable b_s1 : block option;
  mutable b_s2_pc : int;
  mutable b_s2 : block option;
}

let default_config =
  {
    instr_limit = 2_000_000_000;
    aex_interval = None;
    aex_seed = 7L;
    colocated_prob = 0.9999;
    fuel = None;
    tier = Trace;
  }

let schedule_next_aex t =
  match t.config.aex_interval with
  | None -> t.next_aex <- max_int
  | Some mean ->
    (* uniform jitter in [mean/2, 3*mean/2) keeps the schedule aperiodic *)
    let jitter = Deflection_util.Prng.int t.jitter_prng (max 1 mean) in
    t.next_aex <- t.cycles + (mean / 2) + jitter

let create ?(config = default_config) ?(tm = Telemetry.disabled)
    ?(recorder = Flight_recorder.disabled) ?(profiler = Profiler.disabled) ~ocall mem =
  let t =
    {
      mem;
      regs = Array.make 16 0L;
      flags = { zf = false; sf = false; cf = false; ovf = false };
      rip = 0;
      cycles = 0;
      instrs = 0;
      aexes = 0;
      ocalls = 0;
      next_aex = max_int;
      issue_residue = 0;
      config;
      (* labeled sub-streams of the one aex_seed: the AEX schedule and the
         co-location observations never perturb each other (Prng.derive) *)
      jitter_prng =
        Deflection_util.Prng.create
          (Deflection_util.Prng.derive config.aex_seed ~label:"aex-jitter");
      coloc_prng =
        Deflection_util.Prng.create
          (Deflection_util.Prng.derive config.aex_seed ~label:"colocation");
      ocall;
      cache = Hashtbl.create 4096;
      cache_gen = Memory.code_generation mem;
      blocks = Hashtbl.create 1024;
      block_gen = Memory.code_generation mem;
      leaders = Hashtbl.create 256;
      trace_pc = 0;
      klass = Array.make n_classes 0;
      tm;
      recorder;
      profiler;
    }
  in
  schedule_next_aex t;
  t

let class_counts t =
  Array.to_list (Array.mapi (fun i n -> (class_names.(i), n)) t.klass)

let read_reg t r = t.regs.(reg_index r)
let write_reg t r v = t.regs.(reg_index r) <- v
let memory t = t.mem
let rip t = t.rip
let set_rip t pc = t.rip <- pc
let recorder t = t.recorder
let profiler t = t.profiler
let register_file t =
  Array.to_list
    (Array.mapi
       (fun i v ->
         let name =
           match reg_of_index i with
           | Some r -> Format.asprintf "%a" pp_reg r
           | None -> Printf.sprintf "r%d" i
         in
         (name, v))
       t.regs)

let init_stack t =
  let l = Memory.layout t.mem in
  write_reg t RSP (Int64.of_int (l.Layout.stack_hi - 64))

(* ------------------------------------------------------------------ *)
(* Operand evaluation *)

let effective_address t (m : mem) =
  let base = match m.base with Some r -> t.regs.(reg_index r) | None -> 0L in
  let index =
    match m.index with
    | Some r -> Int64.mul t.regs.(reg_index r) (Int64.of_int m.scale)
    | None -> 0L
  in
  Int64.to_int (Int64.add (Int64.add base index) m.disp)

let read_operand t = function
  | Reg r -> t.regs.(reg_index r)
  | Imm v -> v
  | Mem m -> Memory.read_u64 t.mem (effective_address t m)
  | Sym s -> invalid_arg ("Interp: unresolved symbol operand " ^ s)

let write_operand t op v =
  match op with
  | Reg r -> t.regs.(reg_index r) <- v
  | Mem m -> Memory.write_u64 t.mem (effective_address t m) v
  | Imm _ | Sym _ -> invalid_arg "Interp: write to immediate operand"

(* ------------------------------------------------------------------ *)
(* Flags *)

let[@inline always] set_zs t r =
  t.flags.zf <- Int64.equal r 0L;
  t.flags.sf <- Int64.compare r 0L < 0

let[@inline always] set_flags_sub t a b =
  let r = Int64.sub a b in
  set_zs t r;
  t.flags.cf <- Int64.unsigned_compare a b < 0;
  t.flags.ovf <- Int64.compare (Int64.logand (Int64.logxor a b) (Int64.logxor a r)) 0L < 0;
  r

let[@inline always] set_flags_add t a b =
  let r = Int64.add a b in
  set_zs t r;
  t.flags.cf <- Int64.unsigned_compare r a < 0;
  t.flags.ovf <-
    Int64.compare (Int64.logand (Int64.logxor a r) (Int64.logxor b r)) 0L < 0;
  r

let[@inline always] set_flags_logic t r =
  set_zs t r;
  t.flags.cf <- false;
  t.flags.ovf <- false;
  r

let cond_holds t = function
  | E -> t.flags.zf
  | NE -> not t.flags.zf
  | L -> t.flags.sf <> t.flags.ovf
  | LE -> t.flags.zf || t.flags.sf <> t.flags.ovf
  | G -> (not t.flags.zf) && t.flags.sf = t.flags.ovf
  | GE -> t.flags.sf = t.flags.ovf
  | B -> t.flags.cf
  | BE -> t.flags.cf || t.flags.zf
  | A -> (not t.flags.cf) && not t.flags.zf
  | AE -> not t.flags.cf
  | S -> t.flags.sf
  | NS -> not t.flags.sf

(* ------------------------------------------------------------------ *)
(* Stack and AEX *)

let push t v =
  let rsp = Int64.sub t.regs.(reg_index RSP) 8L in
  t.regs.(reg_index RSP) <- rsp;
  Memory.write_u64 t.mem (Int64.to_int rsp) v

let pop t =
  let rsp = t.regs.(reg_index RSP) in
  let v = Memory.read_u64 t.mem (Int64.to_int rsp) in
  t.regs.(reg_index RSP) <- Int64.add rsp 8L;
  v

(* RFLAGS image dumped to (and restored from) the SSA: one bit per
   simulated flag. *)
let flags_word t =
  let bit b i = if b then Int64.shift_left 1L i else 0L in
  Int64.logor (bit t.flags.zf 0)
    (Int64.logor (bit t.flags.sf 1) (Int64.logor (bit t.flags.cf 2) (bit t.flags.ovf 3)))

(* An AEX dumps the register context into the SSA, clobbering the P6
   marker word (which shares the SSA's first slot), and deposits the
   co-location observation the HyperRace-style probe would make. *)
let inject_aex t =
  t.aexes <- t.aexes + 1;
  t.cycles <- t.cycles + Cost.aex_cost;
  if Flight_recorder.enabled t.recorder then
    Flight_recorder.record t.recorder Flight_recorder.Aex ~pc:t.rip ~arg:t.aexes;
  if Telemetry.tracing t.tm then
    Telemetry.event t.tm "interp.aex"
      ~args:[ ("rip", Printf.sprintf "%#x" t.rip); ("n", string_of_int t.aexes) ];
  let l = Memory.layout t.mem in
  let ssa = l.Layout.ssa_lo in
  for i = 0 to 15 do
    Memory.priv_write_u64 t.mem (ssa + (8 * i)) t.regs.(i)
  done;
  Memory.priv_write_u64 t.mem (ssa + 128) (Int64.of_int t.rip);
  Memory.priv_write_u64 t.mem (ssa + 136) (flags_word t);
  let colocated =
    if Deflection_util.Prng.float t.coloc_prng 1.0 < t.config.colocated_prob then 1L else 0L
  in
  Memory.priv_write_u64 t.mem (Layout.colocation_cell l) colocated;
  schedule_next_aex t

let force_aex t = inject_aex t

(* ------------------------------------------------------------------ *)
(* Fetch/decode with a generation-stamped cache *)

let fetch t =
  Memory.check_exec t.mem t.rip;
  let gen = Memory.code_generation t.mem in
  if gen <> t.cache_gen then begin
    (* an imm-rewrite or code patch invalidated every cached decode:
       reset instead of letting dead generations accumulate *)
    Hashtbl.reset t.cache;
    t.cache_gen <- gen
  end;
  match Hashtbl.find_opt t.cache t.rip with
  | Some (i, len) -> (i, len)
  | None ->
    let off = Memory.to_offset t.mem t.rip in
    let i, len = Codec.decode (Memory.code_bytes t.mem) off in
    (* ensure the whole instruction lies in executable memory *)
    Memory.check_exec t.mem (t.rip + len - 1);
    Hashtbl.replace t.cache t.rip (i, len);
    (i, len)

let decode_cache_size t = Hashtbl.length t.cache

(* ------------------------------------------------------------------ *)
(* Execution *)

exception Halted of exit_reason

let f64 v = Int64.float_of_bits v
let b64 v = Int64.bits_of_float v

let exec t instr len =
  let next = t.rip + len in
  let goto a = t.rip <- a in
  let fall () = goto next in
  match instr with
  | Nop -> fall ()
  | Hlt ->
    let code = t.regs.(reg_index RAX) in
    (match Annot.abort_reason_of_exit_code code with
    | Some r ->
      if Telemetry.tracing t.tm then
        Telemetry.event t.tm "interp.policy-abort"
          ~args:[ ("reason", Format.asprintf "%a" Annot.pp_abort_reason r) ];
      raise (Halted (Policy_abort r))
    | None -> raise (Halted (Exited code)))
  | Mov (d, s) ->
    write_operand t d (read_operand t s);
    fall ()
  | Lea (r, m) ->
    t.regs.(reg_index r) <- Int64.of_int (effective_address t m);
    fall ()
  | Push o ->
    push t (read_operand t o);
    fall ()
  | Pop r ->
    t.regs.(reg_index r) <- pop t;
    fall ()
  | Binop (op, d, s) ->
    let a = read_operand t d and b = read_operand t s in
    let r =
      match op with
      | Add -> set_flags_add t a b
      | Sub -> set_flags_sub t a b
      | And -> set_flags_logic t (Int64.logand a b)
      | Or -> set_flags_logic t (Int64.logor a b)
      | Xor -> set_flags_logic t (Int64.logxor a b)
      | Imul ->
        let r = Int64.mul a b in
        set_zs t r;
        t.flags.cf <- false;
        t.flags.ovf <- false;
        r
    in
    write_operand t d r;
    fall ()
  | Unop (op, o) ->
    let a = read_operand t o in
    let r =
      match op with
      | Neg -> set_flags_sub t 0L a
      | Not -> Int64.lognot a
      | Inc -> set_flags_add t a 1L
      | Dec -> set_flags_sub t a 1L
    in
    write_operand t o r;
    fall ()
  | Shift (op, d, c) ->
    let a = read_operand t d in
    let count = Int64.to_int (Int64.logand (read_operand t c) 63L) in
    let r =
      match op with
      | Shl -> Int64.shift_left a count
      | Shr -> Int64.shift_right_logical a count
      | Sar -> Int64.shift_right a count
    in
    set_zs t r;
    write_operand t d r;
    fall ()
  | Idiv o ->
    let b = read_operand t o in
    if Int64.equal b 0L then raise (Halted (Div_by_zero t.rip));
    let a = t.regs.(reg_index RAX) in
    (* x86 idiv raises #DE when the quotient is unrepresentable:
       INT64_MIN / -1 faults on hardware, it does not wrap *)
    if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
      raise (Halted (Div_overflow t.rip));
    t.regs.(reg_index RAX) <- Int64.div a b;
    t.regs.(reg_index RDX) <- Int64.rem a b;
    fall ()
  | Cmp (a, b) ->
    ignore (set_flags_sub t (read_operand t a) (read_operand t b));
    fall ()
  | Test (a, b) ->
    ignore (set_flags_logic t (Int64.logand (read_operand t a) (read_operand t b)));
    fall ()
  | Jmp (Rel d) -> goto (next + d)
  | Jmp (Lab l) -> invalid_arg ("Interp: unresolved label " ^ l)
  | Jcc (c, Rel d) -> if cond_holds t c then goto (next + d) else fall ()
  | Jcc (_, Lab l) -> invalid_arg ("Interp: unresolved label " ^ l)
  | Call (Rel d) ->
    push t (Int64.of_int next);
    goto (next + d)
  | Call (Lab l) -> invalid_arg ("Interp: unresolved label " ^ l)
  | JmpInd o -> goto (Int64.to_int (read_operand t o))
  | CallInd o ->
    let target = Int64.to_int (read_operand t o) in
    push t (Int64.of_int next);
    goto target
  | Ret -> goto (Int64.to_int (pop t))
  | Ocall n ->
    t.ocalls <- t.ocalls + 1;
    t.cycles <- t.cycles + Cost.ocall_transition;
    if Flight_recorder.enabled t.recorder then
      Flight_recorder.record t.recorder Flight_recorder.Ocall ~pc:t.rip ~arg:n;
    if Telemetry.tracing t.tm then
      Telemetry.event t.tm "interp.ocall" ~args:[ ("index", string_of_int n) ];
    (match t.ocall n t with Continue -> fall () | Halt r -> raise (Halted r))
  | Fbin (op, r, o) ->
    let a = f64 t.regs.(reg_index r) and b = f64 (read_operand t o) in
    let v = match op with FAdd -> a +. b | FSub -> a -. b | FMul -> a *. b | FDiv -> a /. b in
    t.regs.(reg_index r) <- b64 v;
    fall ()
  | Fcmp (r, o) ->
    let a = f64 t.regs.(reg_index r) and b = f64 (read_operand t o) in
    (* ucomisd flag image: unordered (either operand NaN) sets ZF=CF=1,
       so A/AE ("strictly ordered-greater" / "not below") stay false on
       NaN while B/BE read true — never "greater" *)
    if Float.is_nan a || Float.is_nan b then begin
      t.flags.zf <- true;
      t.flags.cf <- true
    end
    else begin
      t.flags.zf <- a = b;
      t.flags.cf <- a < b
    end;
    t.flags.sf <- false;
    t.flags.ovf <- false;
    fall ()
  | Cvtsi2sd (r, o) ->
    t.regs.(reg_index r) <- b64 (Int64.to_float (read_operand t o));
    fall ()
  | Cvttsd2si (r, o) ->
    t.regs.(reg_index r) <- Int64.of_float (f64 (read_operand t o));
    fall ()
  | Fsqrt (r, o) ->
    t.regs.(reg_index r) <- b64 (sqrt (f64 (read_operand t o)));
    fall ()

(* Record an abnormal-exit event at the current rip (the pc of the
   instruction that raised — [exec] updates rip only on success). *)
let record_exit t r =
  if Flight_recorder.enabled t.recorder then begin
    match r with
    | Exited _ | Limit_exceeded | Fuel_exhausted -> ()
    | Policy_abort reason ->
      Flight_recorder.record t.recorder Flight_recorder.Abort ~pc:t.rip
        ~arg:(Int64.to_int (Annot.abort_exit_code reason))
    | Mem_fault _ | Invalid_instruction _ | Div_by_zero _ | Div_overflow _ | Ocall_denied _
    | Ocall_failed _ ->
      Flight_recorder.record t.recorder Flight_recorder.Fault ~pc:t.rip ~arg:0
  end

let fuel_spent t =
  match t.config.fuel with Some fuel -> t.cycles >= fuel | None -> false

let step t =
  try
    if t.instrs >= t.config.instr_limit then Some Limit_exceeded
    else if fuel_spent t then Some Fuel_exhausted
    else begin
      if t.cycles >= t.next_aex then inject_aex t;
      let i, len = fetch t in
      let pc = t.rip in
      t.instrs <- t.instrs + 1;
      let k = class_index i in
      t.klass.(k) <- t.klass.(k) + 1;
      (* 3-wide issue for simple register ops; full latency otherwise *)
      if Cost.is_simple i then begin
        t.issue_residue <- t.issue_residue + 1;
        if t.issue_residue >= 3 then begin
          t.issue_residue <- 0;
          t.cycles <- t.cycles + 1
        end
      end
      else t.cycles <- t.cycles + Cost.of_instr i;
      (* retired count bumps before exec so it matches [instrs] (and the
         class counters) even when the instruction faults mid-execution *)
      Profiler.on_step t.profiler ~cycles:t.cycles ~pc;
      if Flight_recorder.enabled t.recorder then
        Flight_recorder.record t.recorder Flight_recorder.Retired ~pc ~arg:0;
      exec t i len;
      if Flight_recorder.enabled t.recorder then begin
        match i with
        | Jcc _ ->
          let taken = t.rip <> pc + len in
          Flight_recorder.record t.recorder
            (if taken then Flight_recorder.Branch_taken else Flight_recorder.Branch_not_taken)
            ~pc ~arg:t.rip
        | JmpInd _ | CallInd _ | Ret ->
          Flight_recorder.record t.recorder Flight_recorder.Branch_taken ~pc ~arg:t.rip
        | _ -> ()
      end;
      None
    end
  with
  | Halted r ->
    record_exit t r;
    Some r
  | Memory.Fault f ->
    record_exit t (Mem_fault f);
    Some (Mem_fault f)
  | Codec.Decode_error _ ->
    record_exit t (Invalid_instruction t.rip);
    Some (Invalid_instruction t.rip)

(* ------------------------------------------------------------------ *)
(* Trace tier: straight-line blocks compiled to fused closures.

   After verification the hot path is decode-free: each basic block —
   ending at any branch/call/ret, before any OCALL/HLT, and at every
   verifier-exported leader — becomes an array of specialized closures
   executed back to back, with the per-instruction counter updates
   (instrs, cycles, issue residue, class histogram) folded into one
   precomputed bulk update per block.

   The tier is only entered when nothing needs per-instruction
   observation (no fuel watchdog, no flight recorder, no profiler; chaos
   plans and the fuzz monitor pin [Step] upstream), and a block is only
   entered when neither the instruction limit nor the AEX schedule can
   fire inside it — the counters are monotone, so "no boundary of the
   whole block trips the check" implies no interior boundary does. Every
   other observable is maintained exactly: closures mirror [exec]'s
   evaluation order, fault payloads carry the faulting instruction's pc,
   and a mid-block fault repairs the counter prefix before rethrowing so
   the exit state is bit-identical to the single-stepper's. *)

exception Trace_invalidated
exception Unsupported_op

let rsp_i = reg_index RSP
let rax_i = reg_index RAX
let rdx_i = reg_index RDX

(* Stores inside compiled code use the no-side-effect fast path when
   possible; the slow path can patch executable pages (self-modifying
   code), after which every compiled block is stale and dispatch must
   recompile — exactly the decode cache's generation discipline. *)
let trace_store_u64 t addr v =
  if not (Memory.write_u64_fast t.mem addr v) then begin
    Memory.write_u64 t.mem addr v;
    if Memory.code_generation t.mem <> t.block_gen then raise Trace_invalidated
  end

let trace_push t v =
  let rsp = Int64.sub (Array.unsafe_get t.regs rsp_i) 8L in
  Array.unsafe_set t.regs rsp_i rsp;
  trace_store_u64 t (Int64.to_int rsp) v

let trace_pop t =
  let rsp = Array.unsafe_get t.regs rsp_i in
  let v = Memory.read_u64_fast t.mem (Int64.to_int rsp) in
  Array.unsafe_set t.regs rsp_i (Int64.add rsp 8L);
  v

let mem_operand = function Mem _ -> true | _ -> false

(* Specialized per address-mode shape. Native-int arithmetic agrees with
   [effective_address]'s Int64 route: both reduce the same sum mod 2^63. *)
let ea_closure (m : Isa.mem) =
  let disp = Int64.to_int m.disp in
  match (m.base, m.index) with
  | None, None -> fun _ -> disp
  | Some b, None ->
    let bi = reg_index b in
    fun t -> Int64.to_int (Array.unsafe_get t.regs bi) + disp
  | None, Some x ->
    let xi = reg_index x and s = m.scale in
    fun t -> (Int64.to_int (Array.unsafe_get t.regs xi) * s) + disp
  | Some b, Some x ->
    let bi = reg_index b and xi = reg_index x and s = m.scale in
    fun t ->
      Int64.to_int (Array.unsafe_get t.regs bi)
      + (Int64.to_int (Array.unsafe_get t.regs xi) * s)
      + disp

let read_closure = function
  | Reg r ->
    let i = reg_index r in
    fun t -> Array.unsafe_get t.regs i
  | Imm v -> fun _ -> v
  | Mem m ->
    let ea = ea_closure m in
    fun t -> Memory.read_u64_fast t.mem (ea t)
  | Sym _ -> raise Unsupported_op

let write_closure = function
  | Reg r ->
    let i = reg_index r in
    fun t v -> Array.unsafe_set t.regs i v
  | Mem m ->
    let ea = ea_closure m in
    fun t v -> trace_store_u64 t (ea t) v
  | Imm _ | Sym _ -> raise Unsupported_op

(* One compiled op. [c_faults] records whether the body can raise (fault
   attribution relies on the dispatcher's trace_pc pin); [c_sets_rip]
   marks bodies that assign the successor rip themselves (branches). *)
type cop = { c_pc : int; c_exec : t -> unit; c_faults : bool; c_sets_rip : bool }

(* Uniform [t -> a -> b -> result] views of the ALU ops, so the
   register/immediate specializations below compile each hot instruction
   to a single closure instead of nested operand-closure calls. *)
let bop_fn = function
  | Add -> set_flags_add
  | Sub -> set_flags_sub
  | And -> fun t a b -> set_flags_logic t (Int64.logand a b)
  | Or -> fun t a b -> set_flags_logic t (Int64.logor a b)
  | Xor -> fun t a b -> set_flags_logic t (Int64.logxor a b)
  | Imul ->
    fun t a b ->
      let r = Int64.mul a b in
      set_zs t r;
      t.flags.cf <- false;
      t.flags.ovf <- false;
      r

let uop_fn = function
  | Neg -> fun t v -> set_flags_sub t 0L v
  | Not -> fun _ v -> Int64.lognot v
  | Inc -> fun t v -> set_flags_add t v 1L
  | Dec -> fun t v -> set_flags_sub t v 1L

(* Conditional-branch body with the condition inlined: one closure, no
   cond_closure hop. Shared by the Jcc arm and the compare-and-branch
   superinstructions. *)
let jcc_body c ~tg ~next =
  match c with
  | E -> fun t -> t.rip <- (if t.flags.zf then tg else next)
  | NE -> fun t -> t.rip <- (if t.flags.zf then next else tg)
  | L -> fun t -> t.rip <- (if t.flags.sf <> t.flags.ovf then tg else next)
  | LE -> fun t -> t.rip <- (if t.flags.zf || t.flags.sf <> t.flags.ovf then tg else next)
  | G -> fun t -> t.rip <- (if (not t.flags.zf) && t.flags.sf = t.flags.ovf then tg else next)
  | GE -> fun t -> t.rip <- (if t.flags.sf = t.flags.ovf then tg else next)
  | B -> fun t -> t.rip <- (if t.flags.cf then tg else next)
  | BE -> fun t -> t.rip <- (if t.flags.cf || t.flags.zf then tg else next)
  | A -> fun t -> t.rip <- (if (not t.flags.cf) && not t.flags.zf then tg else next)
  | AE -> fun t -> t.rip <- (if t.flags.cf then next else tg)
  | S -> fun t -> t.rip <- (if t.flags.sf then tg else next)
  | NS -> fun t -> t.rip <- (if t.flags.sf then next else tg)

let compile_instr ~pc ~len instr =
  let next = pc + len in
  let cop ?(faults = false) ?(sets_rip = false) exec =
    { c_pc = pc; c_exec = exec; c_faults = faults; c_sets_rip = sets_rip }
  in
  match instr with
  | Nop -> cop (fun _ -> ())
  (* register/immediate shapes compile to single closures; the generic
     arms below (operand closures, [exec]'s evaluation order) remain the
     reference semantics for everything else *)
  | Mov (Reg d, Reg s) ->
    let di = reg_index d and si = reg_index s in
    cop (fun t -> Array.unsafe_set t.regs di (Array.unsafe_get t.regs si))
  | Mov (Reg d, Imm v) ->
    let di = reg_index d in
    cop (fun t -> Array.unsafe_set t.regs di v)
  | Mov (Reg d, Mem { base = Some b; index = None; disp; _ }) ->
    (* the two dominant address shapes get the ea computation inlined *)
    let di = reg_index d and bi = reg_index b and disp = Int64.to_int disp in
    cop ~faults:true (fun t ->
        Array.unsafe_set t.regs di
          (Memory.read_u64_fast t.mem (Int64.to_int (Array.unsafe_get t.regs bi) + disp)))
  | Mov (Reg d, Mem { base = Some b; index = Some x; scale; disp }) ->
    let di = reg_index d and bi = reg_index b and xi = reg_index x in
    let disp = Int64.to_int disp in
    cop ~faults:true (fun t ->
        let a =
          Int64.to_int (Array.unsafe_get t.regs bi)
          + (Int64.to_int (Array.unsafe_get t.regs xi) * scale)
          + disp
        in
        Array.unsafe_set t.regs di (Memory.read_u64_fast t.mem a))
  | Mov (Reg d, Mem m) ->
    let di = reg_index d and ea = ea_closure m in
    cop ~faults:true (fun t ->
        Array.unsafe_set t.regs di (Memory.read_u64_fast t.mem (ea t)))
  | Mov (Mem { base = Some b; index = None; disp; _ }, Reg s) ->
    let bi = reg_index b and disp = Int64.to_int disp and si = reg_index s in
    cop ~faults:true (fun t ->
        trace_store_u64 t
          (Int64.to_int (Array.unsafe_get t.regs bi) + disp)
          (Array.unsafe_get t.regs si))
  | Mov (Mem { base = Some b; index = Some x; scale; disp }, Reg s) ->
    let bi = reg_index b and xi = reg_index x and si = reg_index s in
    let disp = Int64.to_int disp in
    cop ~faults:true (fun t ->
        let a =
          Int64.to_int (Array.unsafe_get t.regs bi)
          + (Int64.to_int (Array.unsafe_get t.regs xi) * scale)
          + disp
        in
        trace_store_u64 t a (Array.unsafe_get t.regs si))
  | Mov (Mem m, Reg s) ->
    let ea = ea_closure m and si = reg_index s in
    cop ~faults:true (fun t -> trace_store_u64 t (ea t) (Array.unsafe_get t.regs si))
  | Mov (Mem m, Imm v) ->
    let ea = ea_closure m in
    cop ~faults:true (fun t -> trace_store_u64 t (ea t) v)
  | Mov (d, s) ->
    let rs = read_closure s and wr = write_closure d in
    cop ~faults:(mem_operand d || mem_operand s) (fun t -> wr t (rs t))
  | Lea (r, m) ->
    let i = reg_index r and ea = ea_closure m in
    cop (fun t -> Array.unsafe_set t.regs i (Int64.of_int (ea t)))
  | Push (Reg r) ->
    let i = reg_index r in
    cop ~faults:true (fun t -> trace_push t (Array.unsafe_get t.regs i))
  | Push (Imm v) -> cop ~faults:true (fun t -> trace_push t v)
  | Push o ->
    let ro = read_closure o in
    cop ~faults:true (fun t -> trace_push t (ro t))
  | Pop r ->
    let i = reg_index r in
    cop ~faults:true (fun t -> Array.unsafe_set t.regs i (trace_pop t))
  | Binop (Add, Reg d, Reg s) ->
    (* Add/Sub get their own arms so the flag helper is a direct
       (inlinable) call, not a hop through [bop_fn]'s closure *)
    let di = reg_index d and si = reg_index s in
    cop (fun t ->
        Array.unsafe_set t.regs di
          (set_flags_add t (Array.unsafe_get t.regs di) (Array.unsafe_get t.regs si)))
  | Binop (Add, Reg d, Imm v) ->
    let di = reg_index d in
    cop (fun t -> Array.unsafe_set t.regs di (set_flags_add t (Array.unsafe_get t.regs di) v))
  | Binop (Sub, Reg d, Reg s) ->
    let di = reg_index d and si = reg_index s in
    cop (fun t ->
        Array.unsafe_set t.regs di
          (set_flags_sub t (Array.unsafe_get t.regs di) (Array.unsafe_get t.regs si)))
  | Binop (Sub, Reg d, Imm v) ->
    let di = reg_index d in
    cop (fun t -> Array.unsafe_set t.regs di (set_flags_sub t (Array.unsafe_get t.regs di) v))
  | Binop (op, Reg d, Reg s) ->
    let f = bop_fn op and di = reg_index d and si = reg_index s in
    cop (fun t ->
        Array.unsafe_set t.regs di
          (f t (Array.unsafe_get t.regs di) (Array.unsafe_get t.regs si)))
  | Binop (op, Reg d, Imm v) ->
    let f = bop_fn op and di = reg_index d in
    cop (fun t -> Array.unsafe_set t.regs di (f t (Array.unsafe_get t.regs di) v))
  | Binop (op, d, s) ->
    let f = bop_fn op in
    let rd = read_closure d and rs = read_closure s and wr = write_closure d in
    cop ~faults:(mem_operand d || mem_operand s) (fun t ->
        let a = rd t and b = rs t in
        wr t (f t a b))
  | Unop (Inc, Reg r) ->
    let i = reg_index r in
    cop (fun t -> Array.unsafe_set t.regs i (set_flags_add t (Array.unsafe_get t.regs i) 1L))
  | Unop (Dec, Reg r) ->
    let i = reg_index r in
    cop (fun t -> Array.unsafe_set t.regs i (set_flags_sub t (Array.unsafe_get t.regs i) 1L))
  | Unop (op, Reg r) ->
    let f = uop_fn op and i = reg_index r in
    cop (fun t -> Array.unsafe_set t.regs i (f t (Array.unsafe_get t.regs i)))
  | Unop (op, o) ->
    let f = uop_fn op in
    let ro = read_closure o and wr = write_closure o in
    cop ~faults:(mem_operand o) (fun t -> wr t (f t (ro t)))
  | Shift (op, Reg d, Imm c) ->
    let di = reg_index d and count = Int64.to_int (Int64.logand c 63L) in
    let body shift t =
      let r = shift (Array.unsafe_get t.regs di) count in
      set_zs t r;
      Array.unsafe_set t.regs di r
    in
    cop
      (match op with
      | Shl -> body Int64.shift_left
      | Shr -> body Int64.shift_right_logical
      | Sar -> body Int64.shift_right)
  | Shift (op, d, c) ->
    let rd = read_closure d and rc = read_closure c and wr = write_closure d in
    let faults = mem_operand d || mem_operand c in
    let body shift =
      cop ~faults (fun t ->
          let a = rd t in
          let count = Int64.to_int (Int64.logand (rc t) 63L) in
          let r = shift a count in
          set_zs t r;
          wr t r)
    in
    (match op with
    | Shl -> body Int64.shift_left
    | Shr -> body Int64.shift_right_logical
    | Sar -> body Int64.shift_right)
  | Idiv o ->
    let ro = read_closure o in
    cop ~faults:true (fun t ->
        let b = ro t in
        if Int64.equal b 0L then raise (Halted (Div_by_zero pc));
        let a = Array.unsafe_get t.regs rax_i in
        if Int64.equal a Int64.min_int && Int64.equal b (-1L) then
          raise (Halted (Div_overflow pc));
        Array.unsafe_set t.regs rax_i (Int64.div a b);
        Array.unsafe_set t.regs rdx_i (Int64.rem a b))
  | Cmp (Reg a, Reg b) ->
    let ai = reg_index a and bi = reg_index b in
    cop (fun t ->
        ignore (set_flags_sub t (Array.unsafe_get t.regs ai) (Array.unsafe_get t.regs bi)))
  | Cmp (Reg a, Imm v) ->
    let ai = reg_index a in
    cop (fun t -> ignore (set_flags_sub t (Array.unsafe_get t.regs ai) v))
  | Cmp (a, b) ->
    let ra = read_closure a and rb = read_closure b in
    cop ~faults:(mem_operand a || mem_operand b)
      (fun t -> ignore (set_flags_sub t (ra t) (rb t)))
  | Test (Reg a, Reg b) ->
    let ai = reg_index a and bi = reg_index b in
    cop (fun t ->
        ignore
          (set_flags_logic t
             (Int64.logand (Array.unsafe_get t.regs ai) (Array.unsafe_get t.regs bi))))
  | Test (Reg a, Imm v) ->
    let ai = reg_index a in
    cop (fun t -> ignore (set_flags_logic t (Int64.logand (Array.unsafe_get t.regs ai) v)))
  | Test (a, b) ->
    let ra = read_closure a and rb = read_closure b in
    cop ~faults:(mem_operand a || mem_operand b)
      (fun t -> ignore (set_flags_logic t (Int64.logand (ra t) (rb t))))
  | Jmp (Rel d) ->
    let target = next + d in
    cop ~sets_rip:true (fun t -> t.rip <- target)
  | Jcc (c, Rel d) -> cop ~sets_rip:true (jcc_body c ~tg:(next + d) ~next)
  | Call (Rel d) ->
    let target = next + d and ret = Int64.of_int next in
    cop ~faults:true ~sets_rip:true (fun t ->
        (try trace_push t ret
         with Trace_invalidated ->
           (* the return-address store itself patched code: the push is
              complete, so control still transfers before recompilation *)
           t.rip <- target;
           raise Trace_invalidated);
        t.rip <- target)
  | Ret -> cop ~faults:true ~sets_rip:true (fun t -> t.rip <- Int64.to_int (trace_pop t))
  | JmpInd o ->
    let ro = read_closure o in
    cop ~faults:(mem_operand o) ~sets_rip:true (fun t -> t.rip <- Int64.to_int (ro t))
  | CallInd o ->
    let ro = read_closure o in
    cop ~faults:true ~sets_rip:true (fun t ->
        let target = Int64.to_int (ro t) in
        let ret = Int64.of_int next in
        (try trace_push t ret
         with Trace_invalidated ->
           t.rip <- target;
           raise Trace_invalidated);
        t.rip <- target)
  | Fbin (op, r, Reg s) ->
    let i = reg_index r and si = reg_index s in
    let body f t =
      let a = f64 (Array.unsafe_get t.regs i) and b = f64 (Array.unsafe_get t.regs si) in
      Array.unsafe_set t.regs i (b64 (f a b))
    in
    cop
      (match op with
      | FAdd -> body ( +. )
      | FSub -> body ( -. )
      | FMul -> body ( *. )
      | FDiv -> body ( /. ))
  | Fbin (op, r, o) ->
    let i = reg_index r and ro = read_closure o in
    let body f =
      cop ~faults:(mem_operand o) (fun t ->
          let a = f64 (Array.unsafe_get t.regs i) and b = f64 (ro t) in
          Array.unsafe_set t.regs i (b64 (f a b)))
    in
    (match op with
    | FAdd -> body ( +. )
    | FSub -> body ( -. )
    | FMul -> body ( *. )
    | FDiv -> body ( /. ))
  | Fcmp (r, o) ->
    let i = reg_index r in
    let fcmp t a b =
      if Float.is_nan a || Float.is_nan b then begin
        t.flags.zf <- true;
        t.flags.cf <- true
      end
      else begin
        t.flags.zf <- a = b;
        t.flags.cf <- a < b
      end;
      t.flags.sf <- false;
      t.flags.ovf <- false
    in
    (match o with
    | Reg s ->
      let si = reg_index s in
      cop (fun t ->
          fcmp t (f64 (Array.unsafe_get t.regs i)) (f64 (Array.unsafe_get t.regs si)))
    | _ ->
      let ro = read_closure o in
      cop ~faults:(mem_operand o)
        (fun t -> fcmp t (f64 (Array.unsafe_get t.regs i)) (f64 (ro t))))
  | Cvtsi2sd (r, o) ->
    let i = reg_index r and ro = read_closure o in
    cop ~faults:(mem_operand o)
      (fun t -> Array.unsafe_set t.regs i (b64 (Int64.to_float (ro t))))
  | Cvttsd2si (r, o) ->
    let i = reg_index r and ro = read_closure o in
    cop ~faults:(mem_operand o)
      (fun t -> Array.unsafe_set t.regs i (Int64.of_float (f64 (ro t))))
  | Fsqrt (r, o) ->
    let i = reg_index r and ro = read_closure o in
    cop ~faults:(mem_operand o)
      (fun t -> Array.unsafe_set t.regs i (b64 (sqrt (f64 (ro t)))))
  | Jmp (Lab _) | Jcc (_, Lab _) | Call (Lab _) | Hlt | Ocall _ -> raise Unsupported_op

(* Superinstruction fusion: adjacent cops become one closure. The pc pin
   between members keeps mid-group fault attribution exact; pinning
   before a non-faulting member is harmless (it cannot raise, and the
   next pin overwrites), so the pins are unconditional plain stores. *)
let fuse c1 c2 =
  let b1 = c1.c_exec and b2 = c2.c_exec in
  let p2 = c2.c_pc in
  let body t =
    b1 t;
    t.trace_pc <- p2;
    b2 t
  in
  { c_pc = c1.c_pc; c_exec = body; c_faults = c1.c_faults || c2.c_faults;
    c_sets_rip = c2.c_sets_rip }

let fuse3 c1 c2 c3 =
  let b1 = c1.c_exec and b2 = c2.c_exec and b3 = c3.c_exec in
  let p2 = c2.c_pc and p3 = c3.c_pc in
  let body t =
    b1 t;
    t.trace_pc <- p2;
    b2 t;
    t.trace_pc <- p3;
    b3 t
  in
  { c_pc = c1.c_pc; c_exec = body;
    c_faults = c1.c_faults || c2.c_faults || c3.c_faults; c_sets_rip = c3.c_sets_rip }

let fuse4 c1 c2 c3 c4 =
  let b1 = c1.c_exec and b2 = c2.c_exec and b3 = c3.c_exec and b4 = c4.c_exec in
  let p2 = c2.c_pc and p3 = c3.c_pc and p4 = c4.c_pc in
  let body t =
    b1 t;
    t.trace_pc <- p2;
    b2 t;
    t.trace_pc <- p3;
    b3 t;
    t.trace_pc <- p4;
    b4 t
  in
  { c_pc = c1.c_pc; c_exec = body;
    c_faults = c1.c_faults || c2.c_faults || c3.c_faults || c4.c_faults;
    c_sets_rip = c4.c_sets_rip }

(* The hot pairs from the instrumented programs: the tail of an
   annotation check feeding its guarded store, compare-and-branch, and
   the call prologue's pushes. *)
let fusable i1 i2 =
  match (i1, i2) with
  | (Cmp _ | Test _), Jcc _ -> true
  | Push _, (Push _ | Call _) -> true
  | (Mov _ | Lea _ | Binop _ | Unop _), Mov (Mem _, _) -> true
  | _ -> false

(* Register-only compare-and-branch collapses into a SINGLE closure (the
   flag helper is a direct inlinable call feeding the branch) — the loop
   back-edge pair, so it dominates dynamic execution. Faultless by
   construction: no memory operand on either side. *)
let fuse_cmp_jcc i1 c1 i2 ~p2 ~l2 =
  match (i1, i2) with
  | (Cmp (Reg _, (Reg _ | Imm _)) | Test (Reg _, (Reg _ | Imm _))), Jcc (cc, Rel d) ->
    let next = p2 + l2 in
    let jb = jcc_body cc ~tg:(next + d) ~next in
    let body =
      match i1 with
      | Cmp (Reg a, Reg b) ->
        let ai = reg_index a and bi = reg_index b in
        fun t ->
          ignore (set_flags_sub t (Array.unsafe_get t.regs ai) (Array.unsafe_get t.regs bi));
          jb t
      | Cmp (Reg a, Imm v) ->
        let ai = reg_index a in
        fun t ->
          ignore (set_flags_sub t (Array.unsafe_get t.regs ai) v);
          jb t
      | Test (Reg a, Reg b) ->
        let ai = reg_index a and bi = reg_index b in
        fun t ->
          ignore
            (set_flags_logic t
               (Int64.logand (Array.unsafe_get t.regs ai) (Array.unsafe_get t.regs bi)));
          jb t
      | Test (Reg a, Imm v) ->
        let ai = reg_index a in
        fun t ->
          ignore (set_flags_logic t (Int64.logand (Array.unsafe_get t.regs ai) v));
          jb t
      | _ -> assert false
    in
    Some { c_pc = c1.c_pc; c_exec = body; c_faults = false; c_sets_rip = true }
  | _ -> None

let max_block = 64

(* Mirror of [fetch] that bypasses the decode cache. *)
let decode_for_block t pc =
  Memory.check_exec t.mem pc;
  let i, len = Codec.decode (Memory.code_bytes t.mem) (Memory.to_offset t.mem pc) in
  Memory.check_exec t.mem (pc + len - 1);
  (i, len)

let is_block_terminator = function
  | Jmp _ | Jcc _ | Call _ | Ret | JmpInd _ | CallInd _ -> true
  | _ -> false

let compile_block t entry =
  let cops = ref [] and metas = ref [] in
  let n = ref 0 and pc = ref entry and stop = ref false in
  (try
     while (not !stop) && !n < max_block do
       if !n > 0 && Hashtbl.mem t.leaders !pc then stop := true
       else begin
         let i, len = decode_for_block t !pc in
         match i with
         | Hlt | Ocall _ -> stop := true
         | _ ->
           let c = compile_instr ~pc:!pc ~len i in
           cops := c :: !cops;
           metas := (!pc, len, i) :: !metas;
           incr n;
           pc := !pc + len;
           if is_block_terminator i then stop := true
       end
     done
   with Memory.Fault _ | Codec.Decode_error _ | Unsupported_op ->
     (* truncate: the uncompilable suffix single-steps, reproducing the
        real fault (or decode error) with exact step-tier semantics *)
     ());
  if !n = 0 then None
  else begin
    let cops = Array.of_list (List.rev !cops) in
    let metas = Array.of_list (List.rev !metas) in
    let n = !n in
    (* pass 1: the hot pairs fuse into single superinstruction units *)
    let paired = ref [] and i = ref 0 in
    while !i < n do
      let (_, _, i1) = metas.(!i) in
      if !i + 1 < n then begin
        let p2, l2, i2 = metas.(!i + 1) in
        match fuse_cmp_jcc i1 cops.(!i) i2 ~p2 ~l2 with
        | Some c ->
          paired := c :: !paired;
          i := !i + 2
        | None ->
          if fusable i1 i2 then begin
            paired := fuse cops.(!i) cops.(!i + 1) :: !paired;
            i := !i + 2
          end
          else begin
            paired := cops.(!i) :: !paired;
            incr i
          end
      end
      else begin
        paired := cops.(!i) :: !paired;
        incr i
      end
    done;
    let paired = Array.of_list (List.rev !paired) in
    (* pass 2: group the units four at a time, so the dispatch loop (pin,
       bounds, indirect call) runs once per group instead of once per op *)
    let grouped = ref [] and j = ref 0 in
    let m = Array.length paired in
    while !j < m do
      (match m - !j with
      | 1 -> grouped := paired.(!j) :: !grouped
      | 2 -> grouped := fuse paired.(!j) paired.(!j + 1) :: !grouped
      | 3 -> grouped := fuse3 paired.(!j) paired.(!j + 1) paired.(!j + 2) :: !grouped
      | _ ->
        grouped := fuse4 paired.(!j) paired.(!j + 1) paired.(!j + 2) paired.(!j + 3) :: !grouped);
      j := !j + 4
    done;
    let fused = Array.of_list (List.rev !grouped) in
    let nf = Array.length fused in
    let last_pc, last_len, _ = metas.(n - 1) in
    (* the dispatcher pins trace_pc from [b_op_pcs] before each closure
       and assigns the fall-through rip itself — no wrapper closures *)
    let fall = if fused.(nf - 1).c_sets_rip then -1 else last_pc + last_len in
    let ops = Array.map (fun c -> c.c_exec) fused in
    let op_pcs = Array.map (fun c -> c.c_pc) fused in
    let pcs = Array.map (fun (p, _, _) -> p) metas in
    let lens = Array.map (fun (_, l, _) -> l) metas in
    let body = Array.map (fun (_, _, i) -> i) metas in
    let costs = Array.map Cost.of_instr body in
    let simple = Array.map Cost.is_simple body in
    let kls = Array.map class_index body in
    let sets_rip = Array.map is_block_terminator body in
    (* the 3-wide-issue model makes the block's cycle charge (and exit
       residue) a function of the entry residue alone: precompute all 3 *)
    let cyc = Array.make 3 0 and exitr = Array.make 3 0 in
    for r0 = 0 to 2 do
      let res = ref r0 and c = ref 0 in
      for j = 0 to n - 1 do
        if simple.(j) then begin
          incr res;
          if !res >= 3 then begin
            res := 0;
            incr c
          end
        end
        else c := !c + costs.(j)
      done;
      cyc.(r0) <- !c;
      exitr.(r0) <- !res
    done;
    let ktot = Array.make n_classes 0 in
    Array.iter (fun k -> ktot.(k) <- ktot.(k) + 1) kls;
    let kidx = ref [] and kcnt = ref [] in
    for k = n_classes - 1 downto 0 do
      if ktot.(k) > 0 then begin
        kidx := k :: !kidx;
        kcnt := ktot.(k) :: !kcnt
      end
    done;
    Some
      {
        b_ops = ops;
        b_op_pcs = op_pcs;
        b_fall = fall;
        b_n = n;
        b_pcs = pcs;
        b_lens = lens;
        b_costs = costs;
        b_simple = simple;
        b_klass = kls;
        b_sets_rip = sets_rip;
        b_kidx = Array.of_list !kidx;
        b_kcnt = Array.of_list !kcnt;
        b_cycle_tot = cyc;
        b_exit_res = exitr;
        b_s1_pc = -1;
        b_s1 = None;
        b_s2_pc = -1;
        b_s2 = None;
      }
  end

let lookup_block t pc =
  let gen = Memory.code_generation t.mem in
  if gen <> t.block_gen then begin
    (* same discipline as the decode cache: a code patch drops every
       compiled trace, so stale blocks can neither run nor accumulate *)
    Hashtbl.reset t.blocks;
    t.block_gen <- gen
  end;
  match Hashtbl.find_opt t.blocks pc with
  | Some b -> b
  | None ->
    let b = compile_block t pc in
    Hashtbl.replace t.blocks pc b;
    b

let index_of_pc b pc =
  let rec go j =
    if j >= b.b_n then invalid_arg "Interp: trace fault pc outside block"
    else if b.b_pcs.(j) = pc then j
    else go (j + 1)
  in
  go 0

(* Replay the per-instruction counter charges of ops 0..upto, exactly as
   [step] would have accumulated them. *)
let apply_prefix t b r0 upto =
  let res = ref r0 in
  for j = 0 to upto do
    t.instrs <- t.instrs + 1;
    let k = Array.unsafe_get b.b_klass j in
    t.klass.(k) <- t.klass.(k) + 1;
    if Array.unsafe_get b.b_simple j then begin
      incr res;
      if !res >= 3 then begin
        res := 0;
        t.cycles <- t.cycles + 1
      end
    end
    else t.cycles <- t.cycles + Array.unsafe_get b.b_costs j
  done;
  t.issue_residue <- !res

(* Returns [true] when the block ran to completion, [false] when a store
   inside it patched executable code (counters repaired, rip correct,
   every compiled block stale): the caller must revalidate through
   [lookup_block]. Real faults rethrow after the counter repair, with rip
   at the faulting instruction — exactly what [step]'s handler reports. *)
let exec_block t b =
  let r0 = t.issue_residue in
  match
    let ops = b.b_ops and op_pcs = b.b_op_pcs in
    for i = 0 to Array.length ops - 1 do
      t.trace_pc <- Array.unsafe_get op_pcs i;
      (Array.unsafe_get ops i) t
    done
  with
  | () ->
    if b.b_fall >= 0 then t.rip <- b.b_fall;
    t.instrs <- t.instrs + b.b_n;
    t.cycles <- t.cycles + Array.unsafe_get b.b_cycle_tot r0;
    t.issue_residue <- Array.unsafe_get b.b_exit_res r0;
    let ki = b.b_kidx and kc = b.b_kcnt and kl = t.klass in
    for p = 0 to Array.length ki - 1 do
      let k = Array.unsafe_get ki p in
      Array.unsafe_set kl k (Array.unsafe_get kl k + Array.unsafe_get kc p)
    done;
    true
  | exception e ->
    (* the faulting op pinned its pc: charge the inclusive prefix *)
    let i = index_of_pc b t.trace_pc in
    apply_prefix t b r0 i;
    (match e with
    | Trace_invalidated ->
      if not b.b_sets_rip.(i) then t.rip <- b.b_pcs.(i) + b.b_lens.(i);
      false
    | _ ->
      t.rip <- t.trace_pc;
      raise e)

let run_trace t =
  let limit = t.config.instr_limit in
  let memoize b pc s =
    if b.b_s1_pc < 0 then begin
      b.b_s1_pc <- pc;
      b.b_s1 <- s
    end
    else begin
      b.b_s2_pc <- pc;
      b.b_s2 <- s
    end
  in
  (* [dispatch] is the validating edge (generation check + block-table
     lookup); [enter]/[chain] are the hot path — block to block through
     the inline successor cache, no hashing, no generation check (the
     generation can only move inside a block, which reports it, or inside
     a single step, after which control returns to [dispatch]). *)
  let rec dispatch () =
    match lookup_block t t.rip with Some b -> enter b | None -> step_once ()
  and enter b =
    if
      t.instrs + b.b_n <= limit
      && t.cycles + Array.unsafe_get b.b_cycle_tot t.issue_residue < t.next_aex
    then if exec_block t b then chain b else dispatch ()
    else
      (* the instruction limit or the AEX schedule could fire inside the
         block: single-step across the boundary for exact semantics *)
      step_once ()
  and chain b =
    let pc = t.rip in
    if b.b_s1_pc = pc then (match b.b_s1 with Some nb -> enter nb | None -> step_once ())
    else if b.b_s2_pc = pc then (match b.b_s2 with Some nb -> enter nb | None -> step_once ())
    else begin
      match Hashtbl.find_opt t.blocks pc with
      | Some s ->
        memoize b pc s;
        (match s with Some nb -> enter nb | None -> step_once ())
      | None ->
        let s = compile_block t pc in
        Hashtbl.replace t.blocks pc s;
        memoize b pc s;
        (match s with Some nb -> enter nb | None -> step_once ())
    end
  and step_once () =
    (* no block here (OCALL/HLT/fault site) or a boundary is near: one
       exact single step, then revalidate *)
    match step t with None -> dispatch () | Some r -> r
  in
  (* faults escaping a compiled block (counters already repaired, rip at
     the faulting instruction) land here, once, outside the hot path *)
  match dispatch () with
  | r -> r
  | exception Halted r ->
    record_exit t r;
    r
  | exception Memory.Fault f ->
    record_exit t (Mem_fault f);
    Mem_fault f

let set_block_leaders t addrs =
  Hashtbl.reset t.leaders;
  List.iter (fun a -> Hashtbl.replace t.leaders a ()) addrs;
  (* leader boundaries shape compiled blocks *)
  Hashtbl.reset t.blocks

let trace_cache_size t = Hashtbl.length t.blocks

let observed t = Flight_recorder.enabled t.recorder || Profiler.enabled t.profiler

let run t ~entry =
  t.rip <- entry;
  if Flight_recorder.enabled t.recorder then
    Flight_recorder.record t.recorder Flight_recorder.Ecall ~pc:entry ~arg:0;
  let trace_ok =
    (match t.config.tier with Trace -> true | Step -> false)
    && t.config.fuel = None
    && not (observed t)
  in
  let rec loop () = match step t with None -> loop () | Some r -> r in
  let r = if trace_ok then run_trace t else loop () in
  Profiler.catch_up t.profiler ~cycles:t.cycles ~pc:t.rip;
  r

let add_cycles t n = t.cycles <- t.cycles + n
let cycles t = t.cycles
let instructions t = t.instrs
let aex_count t = t.aexes
let ocall_count t = t.ocalls
