(** The enclave execution engine.

    Interprets target code placed in enclave memory, charging each
    instruction its virtual-cycle cost ({!Deflection_isa.Cost}), enforcing
    page permissions, and injecting asynchronous enclave exits (AEXes) on a
    deterministic pseudo-random schedule — the simulated equivalent of the
    interrupts/page faults an adversarial OS can trigger (paper Section
    IV-B, P6).

    The interpreter is the {e hardware} of the simulation: it does not know
    about policies. Policy enforcement is done by the verified annotation
    code it executes and by the OCall wrappers the bootstrap registers. *)

module Isa = Deflection_isa.Isa
module Memory = Deflection_enclave.Memory
module Telemetry = Deflection_telemetry.Telemetry
module Flight_recorder = Deflection_forensics.Flight_recorder
module Profiler = Deflection_forensics.Profiler

type t

type exit_reason =
  | Exited of int64  (** [Hlt] with RAX >= 0: normal termination *)
  | Policy_abort of Deflection_annot.Annot.abort_reason
      (** [Hlt] with one of the annotation abort codes *)
  | Mem_fault of Memory.fault
  | Invalid_instruction of int  (** undecodable bytes at address *)
  | Div_by_zero of int
  | Div_overflow of int
      (** [idiv] with an unrepresentable quotient (INT64_MIN / -1): x86
          raises #DE exactly as for a zero divisor — the model faults
          instead of silently wrapping *)
  | Ocall_denied of int  (** OCall index not allowed by the manifest *)
  | Ocall_failed of int
      (** OCall handler reported an unrecoverable host-side failure *)
  | Limit_exceeded  (** safety instruction budget exhausted *)
  | Fuel_exhausted
      (** watchdog fuel limit ({!config}[.fuel]) spent — the structured
          "stage ran too long" signal the session maps to its own exit
          code, distinct from the hard safety budget *)

val pp_exit_reason : Format.formatter -> exit_reason -> unit
val exit_reason_to_string : exit_reason -> string

(** What an OCall handler tells the engine to do next. *)
type ocall_outcome = Continue | Halt of exit_reason

(** Execution tier. [Step] fetches, decodes (through the generation-
    stamped decode cache) and executes one instruction at a time. [Trace]
    (the default) additionally compiles verified straight-line basic
    blocks into fused OCaml closures — superinstructions for the hot
    pairs — cached per code generation and executed block-at-a-time. The
    trace tier preserves every observable of the single-stepper: exit
    reasons and their reported offsets, virtual-cycle and instruction
    counts (including the 3-wide-issue residue), per-class histograms,
    AEX injection points, SSA contents and leak logs. {!run} silently
    falls back to [Step] whenever per-instruction observation is needed:
    a watchdog fuel budget, an attached flight recorder or profiler (and,
    upstream, chaos plans and the fuzz monitor, which pin [Step]
    explicitly). *)
type tier = Step | Trace

type config = {
  instr_limit : int;  (** hard safety budget (default 2_000_000_000) *)
  aex_interval : int option;
      (** mean cycles between injected AEXes; [None] = calm platform *)
  aex_seed : int64;
  colocated_prob : float;
      (** probability that an injected AEX's co-location observation reads
          "same physical core" (benign scheduler ≈ 1 - alpha) *)
  fuel : int option;
      (** watchdog budget in virtual cycles; [None] (default) disables it.
          Exceeding it ends the run with {!Fuel_exhausted}. Unlike
          [instr_limit] this is a per-stage resilience knob, not a safety
          backstop. *)
  tier : tier;  (** execution tier (default {!Trace}) *)
}

val default_config : config

val create :
  ?config:config ->
  ?tm:Telemetry.t ->
  ?recorder:Flight_recorder.t ->
  ?profiler:Profiler.t ->
  ocall:(int -> t -> ocall_outcome) ->
  Memory.t ->
  t
(** [tm] (default {!Telemetry.disabled}) receives instant events for
    injected AEXes, OCall transitions and policy aborts when a tracing
    sink is attached; per-class instruction counts are kept regardless
    (see {!class_counts}).

    [recorder] (default {!Flight_recorder.disabled}) receives the
    fine-grained event stream — retired pcs, conditional/indirect branch
    outcomes, ECall/OCall transitions, AEX injections and abnormal exits.

    [profiler] (default {!Profiler.disabled}) samples the pc every
    [interval] virtual cycles; its retired-instruction count tracks
    {!instructions} exactly. *)

(** {2 Register and memory access (for OCall handlers and tests)} *)

val read_reg : t -> Isa.reg -> int64
val write_reg : t -> Isa.reg -> int64 -> unit
val memory : t -> Memory.t
val rip : t -> int

(** [set_rip] points the program counter at an entry before driving the
    interpreter with {!step} (which, unlike {!run}, takes no [entry]). *)
val set_rip : t -> int -> unit
val recorder : t -> Flight_recorder.t
val profiler : t -> Profiler.t

val register_file : t -> (string * int64) list
(** The full register file as [(name, value)], in index order — the
    snapshot crash reports embed. *)

(** {2 Execution} *)

val run : t -> entry:int -> exit_reason
(** Set RIP to [entry] and interpret until halt/fault/limit. RSP must have
    been initialized via {!write_reg} or {!init_stack}. *)

val init_stack : t -> unit
(** Point RSP at the top of the stack region (16-byte aligned, one slack
    slot). *)

val step : t -> exit_reason option
(** Single-step; [None] while running. *)

val force_aex : t -> unit
(** Inject an AEX right now, regardless of the schedule: dump the register
    context (including the flags word) into the SSA and deposit a
    co-location observation. Used by chaos plans (AEX storms) and by the
    SSA round-trip property tests. *)

val flags_word : t -> int64
(** The RFLAGS image as saved to the SSA on an AEX (bit 0 ZF, bit 1 SF,
    bit 2 CF, bit 3 OF). *)

val add_cycles : t -> int -> unit
(** Charge extra virtual cycles (used by OCall wrappers to account for
    work — e.g. record encryption — done on the enclave's behalf). *)

(** {2 Statistics} *)

val cycles : t -> int
val instructions : t -> int
val aex_count : t -> int
val ocall_count : t -> int

val decode_cache_size : t -> int
(** Number of live entries in the fetch/decode cache. The cache is reset
    whenever {!Memory.code_generation} moves, so this is bounded by the
    number of distinct instruction addresses executed since the last code
    write — it does not grow across generation bumps. *)

val set_block_leaders : t -> int list -> unit
(** Absolute pcs of verified basic-block leaders (branch targets,
    function entries, stubs — what the verifier discovered during its
    recursive descent). The trace tier stops compiling a block at any
    leader, so control-flow join points are shared between blocks instead
    of being re-discovered as duplicated suffixes. Purely a compilation
    hint: correctness never depends on it (an unknown join merely
    compiles an overlapping block). Resets the block cache. *)

val trace_cache_size : t -> int
(** Number of live entries in the trace tier's compiled-block cache
    (including negative entries for pcs that must single-step). Reset
    whenever {!Memory.code_generation} moves, exactly like the decode
    cache. *)

val class_names : string array
(** The instruction-class partition used by {!class_counts}, in index
    order: mov, stack, alu, div, branch, callret, indirect, float, ocall,
    misc. *)

val class_counts : t -> (string * int) list
(** Executed-instruction counts per class, in {!class_names} order; the
    values sum to {!instructions}. *)
