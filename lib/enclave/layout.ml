let page_size = 4096

type config = {
  base : int;
  branch_table_size : int;
  shadow_stack_size : int;
  consumer_size : int;
  code_size : int;
  data_size : int;
  stack_size : int;
}

let default_config =
  {
    base = 0x100000;
    branch_table_size = 16 * 1024;
    shadow_stack_size = 64 * 1024;
    consumer_size = 64 * 1024;
    code_size = 512 * 1024;
    data_size = 4 * 1024 * 1024;
    stack_size = 256 * 1024;
  }

let small_config =
  {
    base = 0x10000;
    branch_table_size = 4096;
    shadow_stack_size = 8192;
    consumer_size = 4096;
    code_size = 64 * 1024;
    data_size = 128 * 1024;
    stack_size = 32 * 1024;
  }

type t = {
  config : config;
  base : int;
  ssa_lo : int;
  ssa_hi : int;
  tcs_lo : int;
  tcs_hi : int;
  branch_lo : int;
  branch_hi : int;
  ss_guard_lo : int;
  ss_lo : int;
  ss_hi : int;
  ss_guard_hi : int;
  consumer_lo : int;
  consumer_hi : int;
  code_lo : int;
  code_hi : int;
  data_lo : int;
  data_hi : int;
  stack_guard_lo : int;
  stack_lo : int;
  stack_hi : int;
  stack_guard_hi : int;
  limit : int;
}

let round_up n = (n + page_size - 1) / page_size * page_size

let make (config : config) =
  if config.base mod page_size <> 0 then invalid_arg "Layout.make: base not page-aligned";
  let cursor = ref config.base in
  let region size =
    let lo = !cursor in
    cursor := lo + round_up size;
    (lo, !cursor)
  in
  let ssa_lo, ssa_hi = region page_size in
  let tcs_lo, tcs_hi = region page_size in
  let branch_lo, branch_hi = region config.branch_table_size in
  let ss_guard_lo, ss_lo = region page_size in
  let _, ss_hi = region config.shadow_stack_size in
  let _, ss_guard_hi = region page_size in
  let consumer_lo, consumer_hi = region config.consumer_size in
  let code_lo, code_hi = region config.code_size in
  let data_lo, data_hi = region config.data_size in
  let stack_guard_lo, stack_lo = region page_size in
  let _, stack_hi = region config.stack_size in
  let _, stack_guard_hi = region page_size in
  {
    config;
    base = config.base;
    ssa_lo;
    ssa_hi;
    tcs_lo;
    tcs_hi;
    branch_lo;
    branch_hi;
    ss_guard_lo;
    ss_lo;
    ss_hi;
    ss_guard_hi;
    consumer_lo;
    consumer_hi;
    code_lo;
    code_hi;
    data_lo;
    data_hi;
    stack_guard_lo;
    stack_lo;
    stack_hi;
    stack_guard_hi;
    limit = stack_guard_hi;
  }

let total_size t = t.limit - t.base
let ss_ptr_cell t = t.ss_lo
let aex_counter_cell t = t.ss_lo + 8
let aex_threshold_cell t = t.ss_lo + 16
let colocation_cell t = t.ss_lo + 24
let ss_stack_base t = t.ss_lo + 64
let ssa_marker_addr t = t.ssa_lo

let regions t =
  [
    ("ssa", t.ssa_lo, t.ssa_hi);
    ("tcs", t.tcs_lo, t.tcs_hi);
    ("branch-table", t.branch_lo, t.branch_hi);
    ("ss-guard-lo", t.ss_guard_lo, t.ss_lo);
    ("shadow-stack", t.ss_lo, t.ss_hi);
    ("ss-guard-hi", t.ss_hi, t.ss_guard_hi);
    ("consumer", t.consumer_lo, t.consumer_hi);
    ("code", t.code_lo, t.code_hi);
    ("data", t.data_lo, t.data_hi);
    ("stack-guard-lo", t.stack_guard_lo, t.stack_lo);
    ("stack", t.stack_lo, t.stack_hi);
    ("stack-guard-hi", t.stack_hi, t.stack_guard_hi);
  ]

let store_bounds t ~p3 ~p4 =
  if p4 then (t.data_lo, t.limit)
  else if p3 then (t.code_lo, t.limit)
  else (t.base, t.limit)

let pp fmt t =
  let r name lo hi = Format.fprintf fmt "  %-14s %#x .. %#x (%d KiB)@." name lo hi ((hi - lo) / 1024) in
  Format.fprintf fmt "enclave ELRANGE %#x .. %#x@." t.base t.limit;
  r "ssa" t.ssa_lo t.ssa_hi;
  r "tcs" t.tcs_lo t.tcs_hi;
  r "branch-table" t.branch_lo t.branch_hi;
  r "ss-guard" t.ss_guard_lo t.ss_lo;
  r "shadow-stack" t.ss_lo t.ss_hi;
  r "ss-guard" t.ss_hi t.ss_guard_hi;
  r "consumer" t.consumer_lo t.consumer_hi;
  r "code" t.code_lo t.code_hi;
  r "data" t.data_lo t.data_hi;
  r "stack-guard" t.stack_guard_lo t.stack_lo;
  r "stack" t.stack_lo t.stack_hi;
  r "stack-guard" t.stack_hi t.stack_guard_hi
