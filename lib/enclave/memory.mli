(** Enclave memory with page-granular permissions, plus the untrusted host
    memory outside ELRANGE.

    Faithful to the SGX threat model: a store whose destination lies
    outside ELRANGE {e succeeds} — it lands in attacker-visible host
    memory. We record every such byte in the leak log; that log is the
    ground truth the security tests use ("did this program actually leak?").
    Inside ELRANGE, page permissions are enforced (guard pages fault). *)

type perm = { r : bool; w : bool; x : bool }

val perm_none : perm
val perm_r : perm
val perm_rw : perm
val perm_rx : perm
val perm_rwx : perm
val pp_perm : Format.formatter -> perm -> unit

type access = Read | Write | Exec

type fault =
  | Perm_violation of { addr : int; access : access }
  | Out_of_enclave_exec of int
  | Unaligned of int

exception Fault of fault

val pp_fault : Format.formatter -> fault -> unit
val fault_to_string : fault -> string

type t

val create : Layout.t -> t
(** Fresh enclave memory with the default page permissions of the layout
    (code RWX, data/stack/SSA/TCS/shadow-stack RW, branch table R,
    consumer RX, guards no-access). *)

val layout : t -> Layout.t
val in_elrange : t -> int -> bool
val page_perm : t -> int -> perm
val set_region_perm : t -> lo:int -> hi:int -> perm -> unit
(** Page-aligned region permission change (the loader's privilege). *)

(** {2 Unprivileged accesses (what target-code execution uses)} *)

val read_u8 : t -> int -> int
val read_u64 : t -> int -> int64
val write_u8 : t -> int -> int -> unit
val write_u64 : t -> int -> int64 -> unit

val read_u64_fast : t -> int -> int64
(** Observably identical to {!read_u64}; takes a word-at-a-time fast path
    when every byte of the span is readable enclave memory, and falls back
    to the byte loop (same faults, same host reads) otherwise. *)

val write_u64_fast : t -> int -> int64 -> bool
(** Attempt the word store on a fast path that is only taken when the
    byte loop of {!write_u64} would succeed without side effects beyond
    the store itself — in particular never on executable pages, so the
    code generation cannot move. Returns [false] (and writes nothing)
    when the caller must use {!write_u64} instead. *)

val check_exec : t -> int -> unit
(** Fault unless [addr] is executable enclave memory. *)

(** {2 Privileged accesses (the trusted loader / simulated hardware)} *)

val priv_write_bytes : t -> int -> bytes -> unit
val priv_read_bytes : t -> int -> int -> bytes
val priv_write_u64 : t -> int -> int64 -> unit
val priv_read_u64 : t -> int -> int64

(** {2 Host memory and the leak log} *)

val host_read_u8 : t -> int -> int
val leaked_bytes : t -> int
(** Number of bytes the enclave has written outside ELRANGE so far. *)

val leak_log : t -> (int * int) list
(** [(addr, byte)] writes outside ELRANGE, oldest first. *)

(** {2 Code cache support} *)

val code_generation : t -> int
(** Bumped whenever a byte in an executable page changes; decoded-
    instruction caches key on it. *)

val code_bytes : t -> bytes
(** The raw backing store for ELRANGE; index = addr - base. For use by the
    decoder only (never mutate). *)

val to_offset : t -> int -> int
