(** The bootstrap enclave's memory map (paper Section V-B).

    Regions are ordered so that each successively stronger store policy is
    expressible as a raised lower bound for legal store destinations:

    {v
    base ->  SSA        (security-critical: AEX context dumps, P6 marker)
             TCS        (security-critical thread control)
             branch table     (legitimate indirect-branch targets, P5)
             [guard] shadow stack + runtime cells [guard]   (P5/P6 state)
             consumer   (loader/verifier code, RX, measured)
             code       (RWX under SGXv1 - target binary, P4 protects it)
             data       (RW: globals, bss, heap)
             [guard] stack [guard]
    limit -> v}

    - P1 alone admits stores anywhere in \[base, limit);
    - P3 additionally forbids the metadata below [code_lo];
    - P4 additionally forbids the code region, leaving \[data_lo, limit). *)

type config = {
  base : int;
  branch_table_size : int;
  shadow_stack_size : int;
  consumer_size : int;
  code_size : int;
  data_size : int;
  stack_size : int;
}

val default_config : config
val small_config : config
(** A compact map for unit tests. *)

type t = {
  config : config;
  base : int;
  ssa_lo : int;
  ssa_hi : int;
  tcs_lo : int;
  tcs_hi : int;
  branch_lo : int;
  branch_hi : int;
  ss_guard_lo : int;  (** guard page below the shadow stack *)
  ss_lo : int;
  ss_hi : int;
  ss_guard_hi : int;  (** one past the guard page above the shadow stack *)
  consumer_lo : int;
  consumer_hi : int;
  code_lo : int;
  code_hi : int;
  data_lo : int;
  data_hi : int;
  stack_guard_lo : int;
  stack_lo : int;
  stack_hi : int;
  stack_guard_hi : int;
  limit : int;  (** one past the last enclave byte (ELRANGE end) *)
}

val page_size : int
val make : config -> t
val total_size : t -> int

(** Well-known cells in the shadow-stack region (the runtime cells used by
    the security annotations; they live below [code_lo], so no
    policy-compliant store can reach them). *)

val ss_ptr_cell : t -> int  (** holds the current shadow-stack top pointer *)

val aex_counter_cell : t -> int
val aex_threshold_cell : t -> int
val colocation_cell : t -> int  (** last co-location observation (1 = same core) *)

val ss_stack_base : t -> int  (** first usable shadow-stack slot *)

val ssa_marker_addr : t -> int
(** The SSA word the P6 annotations arm and inspect; an AEX context dump
    overwrites it. *)

val regions : t -> (string * int * int) list
(** Every named region as [(name, lo, hi)], in address order — the
    memory-map snapshot crash reports embed (pair each region with
    {!Memory.page_perm} for the permission column). *)

val store_bounds : t -> p3:bool -> p4:bool -> int * int
(** Legal [lo, hi) for annotated stores under the given policy mix. *)

val pp : Format.formatter -> t -> unit
