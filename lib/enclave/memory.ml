type perm = { r : bool; w : bool; x : bool }

let perm_none = { r = false; w = false; x = false }
let perm_r = { r = true; w = false; x = false }
let perm_rw = { r = true; w = true; x = false }
let perm_rx = { r = true; w = false; x = true }
let perm_rwx = { r = true; w = true; x = true }

let pp_perm fmt p =
  Format.fprintf fmt "%c%c%c" (if p.r then 'r' else '-') (if p.w then 'w' else '-')
    (if p.x then 'x' else '-')

type access = Read | Write | Exec

type fault =
  | Perm_violation of { addr : int; access : access }
  | Out_of_enclave_exec of int
  | Unaligned of int

exception Fault of fault

let access_name = function Read -> "read" | Write -> "write" | Exec -> "exec"

let pp_fault fmt = function
  | Perm_violation { addr; access } ->
    Format.fprintf fmt "permission violation: %s at %#x" (access_name access) addr
  | Out_of_enclave_exec addr -> Format.fprintf fmt "execution outside ELRANGE at %#x" addr
  | Unaligned addr -> Format.fprintf fmt "unaligned access at %#x" addr

let fault_to_string f = Format.asprintf "%a" pp_fault f

type t = {
  layout : Layout.t;
  base : int;  (* = layout.base, cached for the word fast paths *)
  size : int;  (* = ELRANGE length in bytes *)
  mem : bytes;
  perms : perm array; (* one per page *)
  host : (int, int) Hashtbl.t;
  mutable leaks : (int * int) list; (* newest first *)
  mutable leak_count : int;
  mutable generation : int;
}

let page_of t addr = (addr - t.layout.Layout.base) / Layout.page_size

(* pages are 4 KiB, so a non-negative ELRANGE offset's page is a shift *)
let page_shift = 12
let () = assert (Layout.page_size = 1 lsl page_shift)

let create (layout : Layout.t) =
  let npages = Layout.total_size layout / Layout.page_size in
  let perms = Array.make npages perm_rw in
  let t =
    {
      layout;
      base = layout.Layout.base;
      size = Layout.total_size layout;
      mem = Bytes.make (Layout.total_size layout) '\x00';
      perms;
      host = Hashtbl.create 64;
      leaks = [];
      leak_count = 0;
      generation = 0;
    }
  in
  let set lo hi p =
    for page = page_of t lo to page_of t (hi - 1) do
      perms.(page) <- p
    done
  in
  let l = layout in
  set l.Layout.ssa_lo l.ssa_hi perm_rw;
  set l.tcs_lo l.tcs_hi perm_rw;
  set l.branch_lo l.branch_hi perm_r;
  set l.ss_guard_lo l.ss_lo perm_none;
  set l.ss_lo l.ss_hi perm_rw;
  set l.ss_hi l.ss_guard_hi perm_none;
  set l.consumer_lo l.consumer_hi perm_rx;
  set l.code_lo l.code_hi perm_rwx;
  set l.data_lo l.data_hi perm_rw;
  set l.stack_guard_lo l.stack_lo perm_none;
  set l.stack_lo l.stack_hi perm_rw;
  set l.stack_hi l.stack_guard_hi perm_none;
  t

let layout t = t.layout
let in_elrange t addr = addr >= t.layout.Layout.base && addr < t.layout.Layout.limit

let page_perm t addr =
  if not (in_elrange t addr) then perm_none else t.perms.(page_of t addr)

let set_region_perm t ~lo ~hi p =
  if lo mod Layout.page_size <> 0 || hi mod Layout.page_size <> 0 then
    invalid_arg "Memory.set_region_perm: not page-aligned";
  if not (in_elrange t lo && in_elrange t (hi - 1)) then
    invalid_arg "Memory.set_region_perm: outside ELRANGE";
  for page = page_of t lo to page_of t (hi - 1) do
    t.perms.(page) <- p
  done

let to_offset t addr = addr - t.layout.Layout.base

let read_u8 t addr =
  if in_elrange t addr then begin
    if not t.perms.(page_of t addr).r then raise (Fault (Perm_violation { addr; access = Read }));
    Char.code (Bytes.get t.mem (to_offset t addr))
  end
  else
    (* reading untrusted host memory is permitted (and untrustworthy) *)
    match Hashtbl.find_opt t.host addr with Some v -> v | None -> 0

let write_u8 t addr v =
  let v = v land 0xff in
  if in_elrange t addr then begin
    if not t.perms.(page_of t addr).w then raise (Fault (Perm_violation { addr; access = Write }));
    Bytes.set t.mem (to_offset t addr) (Char.chr v);
    if t.perms.(page_of t addr).x then t.generation <- t.generation + 1
  end
  else begin
    (* The store "succeeds" against host memory: this is an information
       leak, recorded as ground truth. *)
    Hashtbl.replace t.host addr v;
    t.leaks <- (addr, v) :: t.leaks;
    t.leak_count <- t.leak_count + 1
  end

let read_u64 t addr =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (addr + i)))
  done;
  !v

let write_u64 t addr v =
  for i = 0 to 7 do
    write_u8 t (addr + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done

(* Word-at-a-time fast paths for the trace-compiled interpreter tier.
   Each takes the fast lane only when the byte-loop slow path above would
   succeed with identical observable effects; every other case — faults,
   host-memory leaks, and stores to executable pages (whose mutation must
   bump the code generation byte-by-byte) — is left to the byte loop, so
   fault addresses, leak logs and generation counts cannot drift. A u64
   spans at most two pages, so checking the end bytes covers the span. *)

let[@inline always] read_u64_fast t addr =
  let off = addr - t.base in
  if
    off >= 0
    && off + 8 <= t.size
    &&
    let p0 = Array.unsafe_get t.perms (off lsr page_shift)
    and p1 = Array.unsafe_get t.perms ((off + 7) lsr page_shift) in
    p0.r && p1.r
  then Bytes.get_int64_le t.mem off
  else read_u64 t addr

let write_u64_fast t addr v =
  let off = addr - t.base in
  if
    off >= 0
    && off + 8 <= t.size
    &&
    let p0 = Array.unsafe_get t.perms (off lsr page_shift)
    and p1 = Array.unsafe_get t.perms ((off + 7) lsr page_shift) in
    p0.w && p1.w && (not p0.x) && not p1.x
  then begin
    Bytes.set_int64_le t.mem off v;
    true
  end
  else false

let check_exec t addr =
  if not (in_elrange t addr) then raise (Fault (Out_of_enclave_exec addr));
  if not t.perms.(page_of t addr).x then raise (Fault (Perm_violation { addr; access = Exec }))

let priv_write_bytes t addr b =
  if not (in_elrange t addr && in_elrange t (addr + Bytes.length b - 1)) then
    invalid_arg "Memory.priv_write_bytes: outside ELRANGE";
  Bytes.blit b 0 t.mem (to_offset t addr) (Bytes.length b);
  t.generation <- t.generation + 1

let priv_read_bytes t addr len =
  if not (in_elrange t addr && in_elrange t (addr + len - 1)) then
    invalid_arg "Memory.priv_read_bytes: outside ELRANGE";
  Bytes.sub t.mem (to_offset t addr) len

let priv_write_u64 t addr v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done;
  priv_write_bytes t addr b

let priv_read_u64 t addr =
  let b = priv_read_bytes t addr 8 in
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get b i)))
  done;
  !v

let host_read_u8 t addr = match Hashtbl.find_opt t.host addr with Some v -> v | None -> 0
let leaked_bytes t = t.leak_count
let leak_log t = List.rev t.leaks
let code_generation t = t.generation
let code_bytes t = t.mem
