type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* One SplitMix64 finalization round: the same bijective mixer [next_int64]
   applies, reused to hash label bytes into sub-seeds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* FNV-1a over the label, then one mix round to spread the low entropy of
   short ASCII strings across all 64 bits. *)
let label_hash label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  mix64 !h

let derive seed ~label = mix64 (Int64.add (Int64.mul seed 0x9E3779B97F4A7C15L) (label_hash label))

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int64_range t lo hi =
  assert (Int64.compare lo hi < 0);
  let span = Int64.sub hi lo in
  let v = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.add lo (Int64.rem v span)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t ~label = create (derive (next_int64 t) ~label)
