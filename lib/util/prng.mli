(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic element of the simulation (AEX injection schedules,
    workload data, key generation) draws from an explicitly seeded [Prng.t]
    so that experiments are exactly reproducible. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the same state. *)

(** {2 Stream splitting}

    Subsystems that each need their own deterministic randomness (the AEX
    injection schedule, the co-location observations, the chaos fault
    engine, retry-backoff jitter) must never share one stream: an extra
    draw by one would shift every later draw of the others, so merely
    {e enabling} a feature would perturb unrelated schedules. Instead,
    each consumer derives a private sub-seed from a common root seed and a
    distinct label.

    [derive root ~label] hashes [(root, label)] through SplitMix64's
    64-bit finalizer (preceded by an FNV-1a fold of the label), so
    distinct labels give statistically independent sub-seeds of the same
    root, and the mapping is stable across runs — the documented
    reproducibility contract of the chaos engine depends on it. Streams
    created from [derive]d seeds never interact: exhausting one leaves
    the others bit-for-bit unchanged (asserted by [suite_chaos]). *)

val derive : int64 -> label:string -> int64
(** [derive root ~label] is the sub-seed for the [label]ed consumer of
    [root]. Deterministic in both arguments; distinct labels yield
    independent streams. *)

val split : t -> label:string -> t
(** [split t ~label] draws once from [t] and returns a fresh generator
    seeded with [derive draw ~label]. Unlike {!derive} this advances [t];
    use it when handing streams to dynamically many children. *)

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int64_range : t -> int64 -> int64 -> int64
(** [int64_range t lo hi] is uniform in [\[lo, hi)]. Requires [lo < hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
