module Policy = Deflection_policy.Policy
module Verifier = Deflection_verifier.Verifier
module Attestation = Deflection_attestation.Attestation
module Json = Deflection_telemetry.Json
module Sha256 = Deflection_crypto.Sha256
module Hmac = Deflection_crypto.Hmac
module Hex = Deflection_util.Hex

type cache_outcome = Hit | Miss | Uncached

let cache_outcome_label = function Hit -> "hit" | Miss -> "miss" | Uncached -> "uncached"

let cache_outcome_of_label = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "uncached" -> Some Uncached
  | _ -> None

type verdict =
  | Accepted of Verifier.report
  | Rejected of Verifier.rejection

type record = {
  seq : int;
  measurement : string;
  policies : string;
  mode : string;  (* Verifier.mode_label of the admitting verification mode *)
  ssa_q : int;
  verdict : verdict;
  cache : cache_outcome;
  lane : int;
}

let schema = "deflection-audit/1"

(* Injective encoding: every field is length-prefixed, so no field value
   (reason strings, policy labels) can masquerade as a field boundary. *)
let canonical r =
  let b = Buffer.create 160 in
  let f s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  f "deflection-audit-record/1";
  f (string_of_int r.seq);
  f r.measurement;
  f r.policies;
  f r.mode;
  f (string_of_int r.ssa_q);
  (match r.verdict with
  | Accepted rep ->
    f "accepted";
    f (string_of_int rep.Verifier.instructions_checked);
    f (string_of_int rep.Verifier.store_annotations);
    f (string_of_int rep.Verifier.rsp_annotations);
    f (string_of_int rep.Verifier.cfi_annotations);
    f (string_of_int rep.Verifier.prologues);
    f (string_of_int rep.Verifier.epilogues);
    f (string_of_int rep.Verifier.ssa_checks)
  | Rejected rej ->
    f "rejected";
    f (Verifier.pass_label rej.Verifier.pass);
    f (string_of_int rej.Verifier.offset);
    f rej.Verifier.reason);
  f (cache_outcome_label r.cache);
  f (string_of_int r.lane);
  Buffer.contents b

let content_key r = canonical { r with seq = 0; lane = 0 }

let genesis_raw = Sha256.digest (Bytes.of_string schema)
let genesis = Hex.encode genesis_raw
let plane_measurement = Sha256.digest (Bytes.of_string "DEFLECTION-audit-plane-v1")

let chain_step prev canon =
  let ctx = Sha256.init () in
  Sha256.update ctx prev;
  Sha256.update_string ctx canon;
  Sha256.finalize ctx

(* MAC bodies share the record encoding discipline. *)
let mac_body tag fields =
  let b = Buffer.create 96 in
  let f s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  f tag;
  List.iter f fields;
  Bytes.of_string (Buffer.contents b)

let segment_mac ~key ~index ~first_seq ~last_seq ~prev_head ~head =
  Hmac.sha256 ~key
    (mac_body "DEFLECTION-audit-segment-v1"
       [
         string_of_int index;
         string_of_int first_seq;
         string_of_int last_seq;
         Bytes.to_string prev_head;
         Bytes.to_string head;
       ])

let final_mac ~key ~count ~head =
  Hmac.sha256 ~key
    (mac_body "DEFLECTION-audit-final-v1" [ string_of_int count; Bytes.to_string head ])

(* ------------------------------------------------------------------ *)

module Log = struct
  type segment = {
    s_index : int;
    s_first : int;
    s_last : int;
    s_head : bytes;  (* chain head after s_last *)
    s_mac : bytes;
  }

  type t = {
    platform : Attestation.Platform.t;
    key : bytes;
    segment_records : int;
    mutex : Mutex.t;
    mutable records_rev : record list;
    mutable count : int;
    mutable head : bytes;
    mutable seg_start_head : bytes;  (* head before the open segment *)
    mutable seg_first : int;  (* first seq of the open segment *)
    mutable segments_rev : segment list;
  }

  let create ?(segment_records = 8) ~platform () =
    if segment_records < 1 then
      invalid_arg "Audit.Log.create: segment_records must be positive";
    {
      platform;
      key = Attestation.Platform.sealing_key platform;
      segment_records;
      mutex = Mutex.create ();
      records_rev = [];
      count = 0;
      head = genesis_raw;
      seg_start_head = genesis_raw;
      seg_first = 0;
      segments_rev = [];
    }

  let append t ~measurement ~policies ~mode ~ssa_q ~verdict ~cache ~lane =
    Mutex.lock t.mutex;
    let r =
      {
        seq = t.count;
        measurement = Hex.encode measurement;
        policies = Policy.Set.label policies;
        mode = Verifier.mode_label mode;
        ssa_q;
        verdict;
        cache;
        lane;
      }
    in
    t.head <- chain_step t.head (canonical r);
    t.records_rev <- r :: t.records_rev;
    t.count <- t.count + 1;
    if t.count - t.seg_first = t.segment_records then begin
      let s_index = List.length t.segments_rev in
      t.segments_rev <-
        {
          s_index;
          s_first = t.seg_first;
          s_last = t.count - 1;
          s_head = t.head;
          s_mac =
            segment_mac ~key:t.key ~index:s_index ~first_seq:t.seg_first
              ~last_seq:(t.count - 1) ~prev_head:t.seg_start_head ~head:t.head;
        }
        :: t.segments_rev;
      t.seg_start_head <- t.head;
      t.seg_first <- t.count
    end;
    Mutex.unlock t.mutex;
    r

  let length t =
    Mutex.lock t.mutex;
    let n = t.count in
    Mutex.unlock t.mutex;
    n

  let head t =
    Mutex.lock t.mutex;
    let h = Hex.encode t.head in
    Mutex.unlock t.mutex;
    h

  let records t =
    Mutex.lock t.mutex;
    let rs = List.rev t.records_rev in
    Mutex.unlock t.mutex;
    rs

  let verdict_json = function
    | Accepted rep ->
      Json.Obj
        [
          ("status", Json.Str "accepted");
          ("instructions", Json.Int rep.Verifier.instructions_checked);
          ("store_annotations", Json.Int rep.Verifier.store_annotations);
          ("rsp_annotations", Json.Int rep.Verifier.rsp_annotations);
          ("cfi_annotations", Json.Int rep.Verifier.cfi_annotations);
          ("prologues", Json.Int rep.Verifier.prologues);
          ("epilogues", Json.Int rep.Verifier.epilogues);
          ("ssa_checks", Json.Int rep.Verifier.ssa_checks);
        ]
    | Rejected rej ->
      Json.Obj
        [
          ("status", Json.Str "rejected");
          ("pass", Json.Str (Verifier.pass_label rej.Verifier.pass));
          ("offset", Json.Int rej.Verifier.offset);
          ("reason", Json.Str rej.Verifier.reason);
        ]

  let record_json r =
    Json.Obj
      [
        ("seq", Json.Int r.seq);
        ("measurement", Json.Str r.measurement);
        ("policies", Json.Str r.policies);
        ("mode", Json.Str r.mode);
        ("ssa_q", Json.Int r.ssa_q);
        ("verdict", verdict_json r.verdict);
        ("cache", Json.Str (cache_outcome_label r.cache));
        ("lane", Json.Int r.lane);
      ]

  let segment_json s =
    Json.Obj
      [
        ("index", Json.Int s.s_index);
        ("first_seq", Json.Int s.s_first);
        ("last_seq", Json.Int s.s_last);
        ("head", Json.Str (Hex.encode s.s_head));
        ("mac", Json.Str (Hex.encode s.s_mac));
      ]

  let seal t =
    Mutex.lock t.mutex;
    let records = List.rev t.records_rev in
    let count = t.count in
    let head = Bytes.copy t.head in
    let closed = List.rev t.segments_rev in
    let seg_first = t.seg_first in
    let seg_start_head = t.seg_start_head in
    Mutex.unlock t.mutex;
    (* a trailing partial segment gets its MAC at seal time, so every
       record of the sealed document is MAC-covered *)
    let segments =
      if count > seg_first then
        closed
        @ [
            (let s_index = List.length closed in
             {
               s_index;
               s_first = seg_first;
               s_last = count - 1;
               s_head = head;
               s_mac =
                 segment_mac ~key:t.key ~index:s_index ~first_seq:seg_first
                   ~last_seq:(count - 1) ~prev_head:seg_start_head ~head;
             });
          ]
      else closed
    in
    let quote =
      Attestation.Platform.quote t.platform ~measurement:plane_measurement ~report_data:head
    in
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("genesis", Json.Str genesis);
        ("segment_records", Json.Int t.segment_records);
        ("records", Json.List (List.map record_json records));
        ("segments", Json.List (List.map segment_json segments));
        ("head", Json.Str (Hex.encode head));
        ("final_mac", Json.Str (Hex.encode (final_mac ~key:t.key ~count ~head)));
        ( "quote",
          Json.Obj
            [
              ("measurement", Json.Str (Hex.encode quote.Attestation.Quote.measurement));
              ("report_data", Json.Str (Hex.encode quote.Attestation.Quote.report_data));
              ("signature", Json.Str (Hex.encode quote.Attestation.Quote.signature));
            ] );
      ]
end

type sink = { log : Log.t; lane : int }

(* ------------------------------------------------------------------ *)
(* Consumer side: re-walk a sealed document. *)

type tamper =
  | Malformed of string
  | Sequence_broken of { index : int }
  | Chain_mismatch of { segment : int }
  | Segment_mac_mismatch of { segment : int }
  | Coverage_gap of { segment : int }
  | Head_mismatch
  | Final_mac_mismatch
  | Quote_mismatch of string

let tamper_to_string = function
  | Malformed m -> Printf.sprintf "malformed audit document: %s" m
  | Sequence_broken { index } ->
    Printf.sprintf "sequence broken at record %d: drop, reorder or insertion" index
  | Chain_mismatch { segment } ->
    Printf.sprintf "hash chain diverges inside segment %d: a record was altered" segment
  | Segment_mac_mismatch { segment } ->
    Printf.sprintf "segment %d MAC does not verify: spliced or forged history" segment
  | Coverage_gap { segment } ->
    Printf.sprintf "segment list does not tile the records at segment %d" segment
  | Head_mismatch -> "document head is not the re-walked chain head"
  | Final_mac_mismatch -> "closing MAC fails: history truncated or extended"
  | Quote_mismatch m -> Printf.sprintf "quote does not bind this history: %s" m

let pp_tamper fmt t = Format.pp_print_string fmt (tamper_to_string t)

type summary = { n_records : int; n_segments : int }

exception Bad of string

let str_field name j =
  match Json.member name j with
  | Some (Json.Str s) -> s
  | _ -> raise (Bad (Printf.sprintf "missing string field %S" name))

let int_field name j =
  match Json.member name j with
  | Some (Json.Int i) -> i
  | _ -> raise (Bad (Printf.sprintf "missing int field %S" name))

let list_field name j =
  match Json.member name j with
  | Some (Json.List l) -> l
  | _ -> raise (Bad (Printf.sprintf "missing list field %S" name))

let pass_of_label = function
  | "symbols" -> Verifier.Symbols
  | "scan" -> Verifier.Scan
  | "cfg" -> Verifier.Cfg
  | "witness" -> Verifier.Witness
  | other -> raise (Bad (Printf.sprintf "unknown verifier pass %S" other))

let record_of_json j =
  let verdict_j =
    match Json.member "verdict" j with
    | Some (Json.Obj _ as v) -> v
    | _ -> raise (Bad "missing object field \"verdict\"")
  in
  let verdict =
    match str_field "status" verdict_j with
    | "accepted" ->
      Accepted
        {
          Verifier.instructions_checked = int_field "instructions" verdict_j;
          store_annotations = int_field "store_annotations" verdict_j;
          rsp_annotations = int_field "rsp_annotations" verdict_j;
          cfi_annotations = int_field "cfi_annotations" verdict_j;
          prologues = int_field "prologues" verdict_j;
          epilogues = int_field "epilogues" verdict_j;
          ssa_checks = int_field "ssa_checks" verdict_j;
        }
    | "rejected" ->
      Rejected
        {
          Verifier.pass = pass_of_label (str_field "pass" verdict_j);
          offset = int_field "offset" verdict_j;
          reason = str_field "reason" verdict_j;
        }
    | other -> raise (Bad (Printf.sprintf "unknown verdict status %S" other))
  in
  let cache =
    match cache_outcome_of_label (str_field "cache" j) with
    | Some c -> c
    | None -> raise (Bad "unknown cache outcome")
  in
  let mode =
    match str_field "mode" j with
    | s when Verifier.mode_of_label s <> None -> s
    | other -> raise (Bad (Printf.sprintf "unknown verification mode %S" other))
  in
  {
    seq = int_field "seq" j;
    measurement = str_field "measurement" j;
    policies = str_field "policies" j;
    mode;
    ssa_q = int_field "ssa_q" j;
    verdict;
    cache;
    lane = int_field "lane" j;
  }

let records_of_doc doc =
  try
    if str_field "schema" doc <> schema then
      raise (Bad (Printf.sprintf "schema is not %S" schema));
    Ok (List.map record_of_json (list_field "records" doc))
  with Bad m -> Error m

let hex_decode_field name j =
  let s = str_field name j in
  match Hex.decode s with
  | b -> b
  | exception Invalid_argument _ ->
    raise (Bad (Printf.sprintf "field %S is not hex" name))

type parsed_segment = { p_index : int; p_first : int; p_last : int; p_head : bytes; p_mac : bytes }

let verify ~platform doc =
  let key = Attestation.Platform.sealing_key platform in
  try
    if str_field "schema" doc <> schema then
      raise (Bad (Printf.sprintf "schema is not %S" schema));
    if str_field "genesis" doc <> genesis then raise (Bad "genesis does not match the schema");
    let records = List.map record_of_json (list_field "records" doc) in
    let n = List.length records in
    let segments =
      List.map
        (fun j ->
          {
            p_index = int_field "index" j;
            p_first = int_field "first_seq" j;
            p_last = int_field "last_seq" j;
            p_head = hex_decode_field "head" j;
            p_mac = hex_decode_field "mac" j;
          })
        (list_field "segments" doc)
      |> List.sort (fun a b -> compare a.p_index b.p_index)
    in
    let doc_head = hex_decode_field "head" doc in
    let doc_final_mac = hex_decode_field "final_mac" doc in
    let quote_j =
      match Json.member "quote" doc with
      | Some (Json.Obj _ as q) -> q
      | _ -> raise (Bad "missing object field \"quote\"")
    in
    (* 1. sequence discipline: record i must carry seq i *)
    let seq_check =
      let rec go i = function
        | [] -> None
        | r :: rest -> if r.seq <> i then Some i else go (i + 1) rest
      in
      go 0 records
    in
    (match seq_check with
    | Some index -> Error (Sequence_broken { index })
    | None ->
      (* 2. the segment list must tile [0, n) contiguously in order *)
      let rec tiles expected idx = function
        | [] -> if expected = n then None else Some idx
        | s :: rest ->
          if s.p_index <> idx || s.p_first <> expected || s.p_last < s.p_first
             || s.p_last >= n
          then Some idx
          else tiles (s.p_last + 1) (idx + 1) rest
      in
      (match tiles 0 0 segments with
      | Some segment -> Error (Coverage_gap { segment })
      | None when n > 0 && segments = [] -> Error (Coverage_gap { segment = 0 })
      | None ->
        (* 3. re-walk the chain segment by segment, checking each
           segment's recorded head and MAC as we cross its boundary *)
        let arr = Array.of_list records in
        let rec walk h = function
          | [] -> Ok h
          | s :: rest ->
            let h' = ref h in
            for i = s.p_first to s.p_last do
              h' := chain_step !h' (canonical arr.(i))
            done;
            if not (Bytes.equal !h' s.p_head) then
              Error (Chain_mismatch { segment = s.p_index })
            else if
              not
                (Hmac.verify ~key
                   (mac_body "DEFLECTION-audit-segment-v1"
                      [
                        string_of_int s.p_index;
                        string_of_int s.p_first;
                        string_of_int s.p_last;
                        Bytes.to_string h;
                        Bytes.to_string !h';
                      ])
                   ~tag:s.p_mac)
            then Error (Segment_mac_mismatch { segment = s.p_index })
            else walk !h' rest
        in
        (match walk genesis_raw segments with
        | Error _ as e -> e
        | Ok head ->
          if not (Bytes.equal head doc_head) then Error Head_mismatch
          else if
            not
              (Hmac.verify ~key
                 (mac_body "DEFLECTION-audit-final-v1"
                    [ string_of_int n; Bytes.to_string head ])
                 ~tag:doc_final_mac)
          then Error Final_mac_mismatch
          else begin
            (* 4. the quote must be valid and bind exactly this head *)
            let quote =
              {
                Attestation.Quote.measurement = hex_decode_field "measurement" quote_j;
                report_data = hex_decode_field "report_data" quote_j;
                signature = hex_decode_field "signature" quote_j;
              }
            in
            let ias = Attestation.Ias.for_platform platform in
            let report = Attestation.Ias.verify ias quote in
            if not report.Attestation.Ias.ok then
              Error (Quote_mismatch "attestation service rejected the quote")
            else if not (Bytes.equal report.Attestation.Ias.measurement plane_measurement)
            then Error (Quote_mismatch "quote measurement is not the audit plane")
            else if not (Bytes.equal report.Attestation.Ias.report_data head) then
              Error (Quote_mismatch "quote report data is not the chain head")
            else Ok { n_records = n; n_segments = List.length segments }
          end)))
  with Bad m -> Error (Malformed m)
