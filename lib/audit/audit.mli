(** Attested admission audit plane: tamper-evident evidence of every
    gateway/session admission decision.

    Each decision the in-enclave verifier renders — acceptance with its
    full report, or rejection with the pass/offset/reason triple — emits
    one canonical {!record} carrying the measurement of the delivered
    binary (SHA-256 of the serialized objfile), the enforced policy-set
    label, the SSA inspection period, the verdict-cache outcome and the
    worker lane that served the session. Records are bound into an
    append-only hash chain

    {v h_0 = SHA256("deflection-audit/1")
   h_i = SHA256(h_(i-1) || canonical(record_i)) v}

    and MAC'd per segment with the enclave sealing key, so the log itself
    can live on the untrusted host: flipping, dropping, reordering,
    truncating or splicing records breaks the chain, a segment MAC or the
    closing MAC. The current chain head is folded into an attestation
    quote's report data at seal time, binding "this quote => this exact
    admission history" for a remote verifier holding only the attestation
    service's view of the platform.

    Schedule independence: a gateway batch appends from K domains, so the
    {e order} of records (and thus [seq], [lane] and the chain head) is
    timing-variant — but the {e multiset} of record contents is not. The
    verdict cache's single-flight discipline guarantees exactly one
    [Miss] per distinct (measurement, policies, ssa_q) key per batch and
    [Hit]s for the rest, so {!content_key} (which excludes [seq] and
    [lane]) yields a multiset that depends only on the job list.
    [suite_audit] pins this with a K=1 vs K=4 comparison. *)

module Policy = Deflection_policy.Policy
module Verifier = Deflection_verifier.Verifier
module Attestation = Deflection_attestation.Attestation
module Json = Deflection_telemetry.Json

(** How the verdict was obtained: from the shared verdict cache ([Hit]),
    by running the verifier under a cache claim ([Miss]), or by a
    cache-less direct verification ([Uncached]). *)
type cache_outcome = Hit | Miss | Uncached

val cache_outcome_label : cache_outcome -> string
(** ["hit"] | ["miss"] | ["uncached"]. *)

(** The full admission verdict, as the audit plane preserves it. *)
type verdict =
  | Accepted of Verifier.report
  | Rejected of Verifier.rejection

type record = {
  seq : int;  (** monotone position in the log, assigned at append *)
  measurement : string;
      (** lowercase-hex SHA-256 of the serialized objfile — the exact
          bytes the code provider sealed *)
  policies : string;  (** {!Policy.Set.label} of the enforced set *)
  mode : string;
      (** {!Verifier.mode_label} of the verification mode that rendered
          the verdict — an auditor can tell a descent admission from a
          witness-checked one *)
  ssa_q : int;
  verdict : verdict;
  cache : cache_outcome;
  lane : int;  (** gateway worker lane (0 for a standalone session) *)
}

val canonical : record -> string
(** The injective byte serialization hashed into the chain: every field
    length-prefixed, so no crafted reason string or label can collide
    with another record's encoding. *)

val content_key : record -> string
(** {!canonical} with [seq] and [lane] zeroed — the schedule-independent
    projection used to compare audit record {e sets} across fan-outs. *)

val genesis : string
(** Lowercase-hex [h_0], the SHA-256 of the schema tag. *)

val plane_measurement : bytes
(** The synthetic enclave measurement the audit plane's quotes are issued
    under (the digest of a fixed plane tag: the sealing identity covers
    the audit machinery itself, not any one target binary). *)

val mac_body : string -> string list -> bytes
(** [mac_body tag fields] — the injective, length-prefixed byte encoding
    every MAC in this codebase is computed over (domain-separating [tag]
    first, then each field). Exported so other sealed planes (the server's
    verdict-cache persistence) share the exact discipline instead of
    re-inventing a near-miss of it. *)

(** The producer: an append-only, mutex-protected chained log. Safe to
    share across gateway worker domains. *)
module Log : sig
  type t

  val create : ?segment_records:int -> platform:Attestation.Platform.t -> unit -> t
  (** A fresh empty log sealed under [platform]'s sealing key
      ({!Attestation.Platform.sealing_key}). [segment_records] (default
      8, must be positive) is the MAC granularity: every completed run of
      that many records closes a segment whose MAC covers the segment's
      span of the chain. *)

  val append :
    t ->
    measurement:bytes ->
    policies:Policy.Set.t ->
    mode:Verifier.mode ->
    ssa_q:int ->
    verdict:verdict ->
    cache:cache_outcome ->
    lane:int ->
    record
  (** Assign the next sequence number, extend the chain and return the
      record as written. [measurement] is the raw 32-byte digest. *)

  val length : t -> int
  val head : t -> string  (** lowercase-hex current chain head *)

  val records : t -> record list
  (** In sequence order. *)

  val seal : t -> Json.t
  (** Freeze the current state into a [deflection-audit/1] document:
      records, closed segments plus a MAC over any trailing partial
      segment, the chain head, a closing MAC over (count, head) — so even
      a truncation at a segment boundary is evident — and a platform
      quote whose report data {e is} the chain head. Non-destructive:
      the log keeps accepting appends, and sealing again covers the
      longer history. *)
end

(** A log endpoint annotated with the worker lane doing the appending —
    what a session's bootstrap enclave carries. *)
type sink = { log : Log.t; lane : int }

(** First tamper found when re-walking a sealed document. *)
type tamper =
  | Malformed of string  (** not a well-formed deflection-audit/1 doc *)
  | Sequence_broken of { index : int }
      (** record at position [index] does not carry seq = [index]:
          a drop, reorder or insertion that kept the original numbering *)
  | Chain_mismatch of { segment : int }
      (** re-walked chain diverges from the head recorded for this
          segment: a record inside it was altered (or renumbered) *)
  | Segment_mac_mismatch of { segment : int }
      (** the segment's MAC does not verify under the sealing key:
          spliced-in history or a forged segment head *)
  | Coverage_gap of { segment : int }
      (** the segment list does not tile the records contiguously *)
  | Head_mismatch  (** the document head is not the re-walked head *)
  | Final_mac_mismatch
      (** the closing MAC over (count, head) fails: truncation or
          extension of the sealed history *)
  | Quote_mismatch of string
      (** the embedded quote fails attestation-service verification or
          its report data is not the chain head *)

val tamper_to_string : tamper -> string
val pp_tamper : Format.formatter -> tamper -> unit

type summary = { n_records : int; n_segments : int }

val verify : platform:Attestation.Platform.t -> Json.t -> (summary, tamper) result
(** Re-walk a sealed document: recompute the chain from genesis over the
    canonical form of every record, check every segment MAC, the closing
    MAC and the quote binding under [platform]'s keys. Detects flips,
    drops, reorders, truncations and splices; [Ok] iff the document is
    byte-for-byte the history the enclave sealed. *)

val records_of_doc : Json.t -> (record list, string) result
(** Parse just the records (no integrity checks) — the [audit show]
    rendering path. *)
