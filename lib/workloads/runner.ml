module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp
module Manifest = Deflection_policy.Manifest
module Telemetry = Deflection_telemetry.Telemetry

type measurement = {
  policies : Policy.Set.t;
  cycles : int;
  instructions : int;
  aexes : int;
  outputs : string list;
  exit : Interp.exit_reason;
  telemetry : Telemetry.snapshot;
}

let bench_manifest =
  {
    Manifest.default with
    Manifest.aex_threshold = 10_000_000;
    (* long benchmarks must not exhaust the AEX budget on a benign platform *)
  }

let run ?(policies = Policy.Set.p1_p6) ?(inputs = []) ?(aex_interval = Some 2_000_000)
    ?(tier = Interp.default_config.Interp.tier) ?tm ?recorder ?profiler source =
  let interp =
    {
      Interp.default_config with
      Interp.aex_interval;
      colocated_prob = 1.0;
      (* benign scheduler: the co-location test always passes *)
      tier;
    }
  in
  match
    Deflection.Session.run ~policies ~manifest:bench_manifest ~interp ?tm ?recorder ?profiler
      ~source ~inputs ()
  with
  | Error e -> Error (Deflection.Session.error_to_string e)
  | Ok o ->
    (match o.Deflection.Session.exit with
    | Interp.Exited 0L ->
      Ok
        {
          policies;
          cycles = o.Deflection.Session.cycles;
          instructions = o.Deflection.Session.instructions;
          aexes = o.Deflection.Session.aexes;
          outputs = List.map Bytes.to_string o.Deflection.Session.outputs;
          exit = o.Deflection.Session.exit;
          telemetry = o.Deflection.Session.telemetry;
        }
    | other -> Error ("workload did not exit cleanly: " ^ Interp.exit_reason_to_string other))

let settings =
  [
    ("baseline", Policy.Set.none);
    ("P1", Policy.Set.p1);
    ("P1+P2", Policy.Set.p1_p2);
    ("P1-P5", Policy.Set.p1_p5);
    ("P1-P6", Policy.Set.p1_p6);
  ]

let overhead ~baseline m =
  100.0 *. (float_of_int m.cycles -. float_of_int baseline.cycles) /. float_of_int baseline.cycles
