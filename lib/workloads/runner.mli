(** Shared measurement harness for the evaluation workloads: runs a MiniC
    program through the full DEFLECTION session under a given policy set
    and reports deterministic virtual-cycle counts. *)

module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp

type measurement = {
  policies : Policy.Set.t;
  cycles : int;
  instructions : int;
  aexes : int;
  outputs : string list;  (** decrypted plaintext records *)
  exit : Interp.exit_reason;
  telemetry : Deflection_telemetry.Telemetry.snapshot;
      (** the session's telemetry (see {!Deflection.Session.outcome}) *)
}

val run :
  ?policies:Policy.Set.t ->
  ?inputs:bytes list ->
  ?aex_interval:int option ->
  ?tier:Interp.tier ->
  ?tm:Deflection_telemetry.Telemetry.t ->
  ?recorder:Deflection_forensics.Flight_recorder.t ->
  ?profiler:Deflection_forensics.Profiler.t ->
  string ->
  (measurement, string) result
(** Defaults: P1-P6, no inputs, AEX injected every ~2M cycles (the benign
    platform's interrupt rate), co-location always true, AEX budget high
    enough for long benchmarks, the default execution tier ([Trace]).
    [tier] pins an execution tier (the tier benchmark compares [Step]
    against [Trace] on identical configs). [recorder]/[profiler] attach
    the forensics instruments to the interpreter (see
    {!Deflection.Session.run}). *)

val settings : (string * Policy.Set.t) list
(** The five evaluation settings: baseline (no instrumentation), P1,
    P1+P2, P1-P5, P1-P6 — the columns of Table II. *)

val overhead : baseline:measurement -> measurement -> float
(** Relative cycle overhead in percent. *)
