module Session = Deflection.Session
module Policy = Deflection_policy.Policy
module Verifier = Deflection_verifier.Verifier
module Frontend = Deflection_compiler.Frontend
module Objfile = Deflection_isa.Objfile
module Telemetry = Deflection_telemetry.Telemetry
module Hdr = Deflection_telemetry.Hdr
module Audit = Deflection_audit.Audit

type job = {
  label : string;
  source : string;
  compile_policies : Policy.Set.t option;
  inputs : bytes list;
  seed : int64;
}

let job ?compile_policies ?(inputs = []) ?(seed = 1L) ~label source =
  { label; source; compile_policies; inputs; seed }

type session_result = {
  label : string;
  seed : int64;
  outcome : (Session.outcome, Session.error) result;
  exit_code : int;
}

type batch = {
  results : session_result list;
  counters : (string * int) list;
  cache_stats : Verifier.Cache.stats option;
  distinct_binaries : int;
  workers : int;
  latencies : (string * Hdr.t) list;
  trace : Telemetry.snapshot option;
}

(* The key under which a job's compiled binary is shared: two jobs share
   one compile exactly when source text and effective annotation policy
   set coincide. *)
let compile_key ~policies j =
  let pols = match j.compile_policies with Some p -> p | None -> policies in
  Policy.Set.label pols ^ "\x00" ^ j.source

let bump tbl k v =
  Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))

(* Stage latencies ride on the session span tree: every completed span's
   wall duration lands in a per-worker log-bucketed histogram under the
   span's name, plus a whole-session family split by verdict-cache
   outcome. Worker instances merge exactly at join (Hdr.merge), so the
   batch's percentile block is the same histogram a serial run would
   have accumulated — only the recorded durations themselves are
   timing-variant. The verifier's per-pass nanosecond counters ride the
   same merge: each session contributes one sample per pass family
   ([verifier.pass.decode], [verifier.pass.p5_cfi], ...). *)
let pass_ns_prefix = "verifier.pass_ns."

let observe_session_latencies lat (snap : Telemetry.snapshot) =
  let observe name v =
    let h =
      match Hashtbl.find_opt lat name with
      | Some h -> h
      | None ->
        let h = Hdr.create () in
        Hashtbl.add lat name h;
        h
    in
    Hdr.observe h v
  in
  let cache_family =
    if Option.value ~default:0 (List.assoc_opt "verifier.cache.hit" snap.Telemetry.counters) > 0
    then Some "session.cache_hit"
    else if
      Option.value ~default:0 (List.assoc_opt "verifier.cache.miss" snap.Telemetry.counters)
      > 0
    then Some "session.cache_miss"
    else None
  in
  List.iter
    (fun (s : Telemetry.span_info) ->
      let dur = s.Telemetry.stop_ns - s.Telemetry.start_ns in
      observe s.Telemetry.sname dur;
      if s.Telemetry.sname = "session" then
        match cache_family with Some f -> observe f dur | None -> ())
    snap.Telemetry.spans;
  List.iter
    (fun (name, (h : Telemetry.hist_summary)) ->
      let lp = String.length pass_ns_prefix in
      if String.length name > lp && String.sub name 0 lp = pass_ns_prefix then
        observe ("verifier.pass." ^ String.sub name lp (String.length name - lp))
          h.Telemetry.h_sum)
    snap.Telemetry.histograms

let run_batch ?(jobs = 1) ?(policies = Policy.Set.p1_p6) ?(ssa_q = 20) ?layout ?cache
    ?interp ?resilience_config ?audit ?(verification = Verifier.Descent)
    ?(tm = Telemetry.disabled) (job_list : job list) : batch =
  if jobs < 1 then invalid_arg "Gateway.run_batch: jobs must be >= 1";
  let js = Array.of_list job_list in
  let n = Array.length js in
  (* Compile-once sharing rides with the cache: the warm path compiles
     each distinct (source, policy set) a single time up front and hands
     the shared objfile to every session; the cold path (no cache) keeps
     the paper's baseline shape, every session compiling and verifying
     its own delivery. *)
  let compiled : (string, (Objfile.t, Frontend.error) result) Hashtbl.t = Hashtbl.create 8 in
  let distinct = ref 0 in
  if Option.is_some cache then
    Array.iter
      (fun j ->
        let k = compile_key ~policies j in
        if not (Hashtbl.mem compiled k) then begin
          incr distinct;
          let pols = match j.compile_policies with Some p -> p | None -> policies in
          Hashtbl.add compiled k (Frontend.compile ~policies:pols ~ssa_q j.source)
        end)
      js;
  let results : session_result option array = Array.make n None in
  let next = Atomic.make 0 in
  (* Per-session trace retention is only paid when the caller attached a
     tracing batch registry: each session then records into its own ring
     sink, and the per-worker snapshot lists are grafted under the batch
     root span at join. *)
  let collect_trace = Telemetry.tracing tm in
  (* Work-stealing dispatch over an atomic index: each slot of [results]
     is written by exactly one worker, each worker folds its sessions'
     counters and stage latencies into private tables, and the tables
     are summed/merged after the join — so neither the result array nor
     the merged counters depend on which domain ran which job. Worker
     [w] appends its admission records under audit lane [w] (lane 0 is
     the calling domain); the log itself serialises appends, and the
     record {e set} — everything but seq/lane — stays
     schedule-independent. *)
  let worker w () =
    let audit_sink = Option.map (fun log -> { Audit.log; lane = w }) audit in
    let counters : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let lat : (string, Hdr.t) Hashtbl.t = Hashtbl.create 16 in
    let snaps_rev = ref [] in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let j = js.(i) in
        let stm =
          if collect_trace then
            Telemetry.create ~sink:(Telemetry.Sink.ring ~capacity:4096) ()
          else Telemetry.create ()
        in
        let outcome =
          match
            if Option.is_some cache then Hashtbl.find_opt compiled (compile_key ~policies j)
            else None
          with
          | Some (Error e) -> Error (Session.Compile_error e)
          | pre ->
            let precompiled = match pre with Some (Ok obj) -> Some obj | _ -> None in
            Session.run ~policies ~ssa_q ?layout ?interp ?resilience_config
              ?verifier_cache:cache ?precompiled ?audit:audit_sink ~verification
              ~seed:j.seed ~tm:stm ~source:j.source ~inputs:j.inputs ()
        in
        (* fold this session's counters in whether it succeeded or not:
           failed sessions still did attestation/verification work *)
        let snap = Telemetry.snapshot stm in
        List.iter (fun (k, v) -> bump counters k v) snap.Telemetry.counters;
        observe_session_latencies lat snap;
        if collect_trace then snaps_rev := snap :: !snaps_rev;
        results.(i) <-
          Some
            {
              label = j.label;
              seed = j.seed;
              outcome;
              exit_code = Session.process_exit_code outcome;
            };
        loop ()
      end
    in
    loop ();
    (counters, lat, List.rev !snaps_rev)
  in
  let k = max 1 (min jobs (max n 1)) in
  let tables =
    Telemetry.span tm "gateway.batch" @@ fun () ->
    if k = 1 then [ worker 0 () ]
    else begin
      let spawned = List.init (k - 1) (fun i -> Domain.spawn (worker (i + 1))) in
      let mine = worker 0 () in
      mine :: List.map Domain.join spawned
    end
  in
  let merged : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (t, _, _) -> Hashtbl.iter (fun key v -> bump merged key v) t) tables;
  let counters =
    Hashtbl.fold (fun key v acc -> (key, v) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let merged_lat : (string, Hdr.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (_, lat, _) ->
      Hashtbl.iter
        (fun key h ->
          match Hashtbl.find_opt merged_lat key with
          | Some into -> Hdr.merge_into ~into h
          | None ->
            let into = Hdr.create ~sub_bits:(Hdr.sub_bits h) () in
            Hdr.merge_into ~into h;
            Hashtbl.add merged_lat key into)
        lat)
    tables;
  let latencies =
    Hashtbl.fold (fun key h acc -> (key, h) :: acc) merged_lat []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let trace =
    if collect_trace then
      Some
        (Telemetry.graft ~root:(Telemetry.snapshot tm)
           ~lanes:
             (List.mapi
                (fun i (_, _, snaps) -> (Printf.sprintf "worker.%d" i, snaps))
                tables))
    else None
  in
  {
    results = Array.to_list results |> List.map Option.get;
    counters;
    cache_stats = Option.map Verifier.Cache.stats cache;
    distinct_binaries = !distinct;
    workers = k;
    latencies;
    trace;
  }
