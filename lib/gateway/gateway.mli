(** Verify-once/admit-many serving gateway.

    A gateway drives a batch of independent CCaaS sessions — each its own
    bootstrap enclave, attestation handshakes, sealed delivery, execution
    and output decryption — through two shared fast paths:

    - a {!Verifier.Cache} of verdicts keyed by the measurement of the
      delivered binary (SHA-256 of the serialized objfile) bound to the
      enforced policy set and SSA inspection period, so N sessions of the
      same binary pay the in-enclave verifier pass once; and
    - compile-once sharing: each distinct (source, policy set) pair is
      compiled a single time and the objfile handed to every session that
      delivers it.

    Batches fan out over 1..K OCaml domains. The dispatch is an atomic
    work-stealing index, results land in per-job slots, and telemetry
    counters are summed after the join, so a batch's results and merged
    counters are identical regardless of the worker count — the property
    [suite_gateway] pins with a K=1 vs K=4 diff. *)

module Session = Deflection.Session
module Policy = Deflection_policy.Policy
module Verifier = Deflection_verifier.Verifier
module Telemetry = Deflection_telemetry.Telemetry
module Hdr = Deflection_telemetry.Hdr
module Audit = Deflection_audit.Audit

type job = {
  label : string;  (** caller-chosen name, echoed in the result *)
  source : string;  (** MiniC source the code provider ships *)
  compile_policies : Policy.Set.t option;
      (** policy set the binary is {e annotated} for; [None] compiles for
          the batch's enforced set. A mismatching subset (e.g. compiling
          for P1-P4 under a P1-P6 gateway) is the canonical way to get a
          verifier rejection into a batch. *)
  inputs : bytes list;  (** the data owner's chunks *)
  seed : int64;
}

val job :
  ?compile_policies:Policy.Set.t ->
  ?inputs:bytes list ->
  ?seed:int64 ->
  label:string ->
  string ->
  job
(** [job ~label source] with defaults: compile for the batch policy set,
    no inputs, seed 1. *)

type session_result = {
  label : string;
  seed : int64;
  outcome : (Session.outcome, Session.error) result;
  exit_code : int;  (** {!Session.process_exit_code} of [outcome] *)
}

type batch = {
  results : session_result list;  (** in job order, independent of [workers] *)
  counters : (string * int) list;
      (** telemetry counters summed over every session, sorted by name —
          equal to the sequential totals for any worker count *)
  cache_stats : Verifier.Cache.stats option;
      (** verdict-cache accounting, when a cache was supplied *)
  distinct_binaries : int;
      (** distinct (source, policy set) pairs compiled up front (0 on the
          cold path, which compiles per session) *)
  workers : int;  (** domains actually used: [min jobs (max n 1)] *)
  latencies : (string * Hdr.t) list;
      (** per-stage wall-clock latency histograms, sorted by name: one
          family per session span name ([session], [verify], [compile],
          [execute], [deliver], ...) plus [session.cache_hit] /
          [session.cache_miss] splitting whole-session latency by
          verdict-cache outcome, and one [verifier.pass.*] family per
          instrumented verifier pass ([decode], [p1_store], [p2_rsp],
          [p5_cfi], [p5_stack], [p6_ssa]) — each session that ran a
          fresh verifier pass contributes one per-pass nanosecond
          sample. Per-worker instances are merged exactly
          at join, so sample {e counts} are schedule-independent; the
          recorded durations are wall-clock and belong in the
          timing-variant part of any export. *)
  trace : Telemetry.snapshot option;
      (** the grafted batch trace — root [gateway.batch] span, one
          [worker.K] lane per domain, every session's span tree
          re-parented under its lane — when a tracing registry was
          passed; [None] otherwise *)
}

val run_batch :
  ?jobs:int ->
  ?policies:Policy.Set.t ->
  ?ssa_q:int ->
  ?layout:Deflection_enclave.Layout.config ->
  ?cache:Verifier.Cache.t ->
  ?interp:Session.Interp.config ->
  ?resilience_config:Session.Resilience.config ->
  ?audit:Audit.Log.t ->
  ?verification:Verifier.mode ->
  ?tm:Telemetry.t ->
  job list ->
  batch
(** Run every job to completion and return the batch in job order.

    [jobs] (default 1) is the domain fan-out; [invalid_arg] when < 1.
    [policies] (default P1-P6) and [ssa_q] (default 20) are the gateway's
    enforced verification configuration, shared by every session.

    [interp] and [resilience_config] are handed to every session
    unchanged — a multi-tenant server uses them to impose a per-tenant
    fuel budget and per-stage retry/timeout bounds on a tenant's whole
    sub-batch.

    [cache] enables the warm path: the verdict cache is consulted by each
    enclave's binary-delivery ECall ({e both} acceptances and rejections
    are cached), and distinct sources are compiled once up front. Omit it
    for the cold baseline, where every session compiles and verifies its
    own delivery from scratch.

    [audit] (default none) attaches a shared admission audit log: every
    session's delivery verdict appends one hash-chained record,
    attributed to the worker lane that ran the session (lane 0 is the
    calling domain). Appends are serialised by the log itself; the
    record {e set} minus seq/lane is schedule-independent, matching the
    batch's determinism contract.

    [verification] (default [Verifier.Descent]) selects each session's
    verification mode (descent, witnessed, witnessed with fallback) —
    part of every enclave's measured identity and of the verdict-cache
    key, so batches under different modes never share cache entries.

    [tm] (default {!Telemetry.disabled}) is the batch-level registry: the
    dispatch runs under a [gateway.batch] root span on it, and when it is
    {e tracing} (ring or custom sink) every session additionally records
    into its own ring sink and [batch.trace] carries the grafted
    one-tree snapshot. Stage latency histograms are collected whether or
    not [tm] traces. *)
