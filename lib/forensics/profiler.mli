(** Cycle-driven sampling profiler for the interpreter.

    Every [interval] virtual cycles the profiler captures the program
    counter of the instruction that crossed the threshold, building
    per-function / per-site hot-spot histograms without per-instruction
    bookkeeping: the common-case cost of {!on_step} is one integer
    compare and one bump.

    The sample population is exact by construction: one sample per
    multiple of [interval] crossed, so after {!catch_up} at the end of a
    run the total sample count equals [cycles / interval] (the invariant
    [suite_forensics] asserts). Alongside the samples the profiler counts
    retired instructions, which must agree with the interpreter's own
    per-class counters ([Interp.class_counts]).

    Addresses resolve to [function + offset] through the symbol map the
    loader produces ({!set_symbols}); unmapped samples (consumer code,
    nothing loaded) fall into ["<unmapped>"]. *)

type t

val create : ?interval:int -> unit -> t
(** A fresh profiler sampling every [interval] (default 64, must be
    positive) virtual cycles. *)

val disabled : t
(** Shared inert instance; {!on_step} short-circuits on one boolean. *)

val enabled : t -> bool
val interval : t -> int

val set_symbols : t -> (string * int) list -> unit
(** Function symbols as [(name, entry address)]; a sampled pc is
    attributed to the nearest function entry at or below it. *)

val on_step : t -> cycles:int -> pc:int -> unit
(** Per-retired-instruction hook: bumps the retired count and records one
    sample at [pc] for every multiple of [interval] the cycle counter
    crossed since the last call. *)

val catch_up : t -> cycles:int -> pc:int -> unit
(** Account for cycles charged outside the stepping loop (OCall wrapper
    work, final time-blurring padding) by attributing any remaining
    threshold crossings to [pc]. Does not bump the retired count. *)

val retired : t -> int
(** Retired instructions observed — must equal the interpreter's
    instruction count and the sum of its class counters. *)

val samples_total : t -> int

(** {2 Aggregation and export} *)

type hotspot = {
  func : string;
  offset : int;  (** [pc - function entry] *)
  pc : int;
  count : int;
}

val hotspots : t -> hotspot list
(** Distinct sampled sites, hottest first (ties by address). *)

val by_function : t -> (string * int) list
(** Sample counts aggregated per function, hottest first. *)

val collapsed : t -> string
(** Flamegraph-compatible collapsed-stack text: one
    ["function;+0xOFFSET count"] line per sampled site (two frames:
    function, then site within it). Feed to [flamegraph.pl] or speedscope
    directly. *)

val to_json : ?cycles:int -> t -> Deflection_telemetry.Json.t
(** The [deflection-profile/1] document: interval, totals, per-function
    counts, hot spots and the collapsed text. [cycles] records the run's
    final cycle count when known. *)

val pp : Format.formatter -> t -> unit
(** Human-readable hot-spot table. *)
