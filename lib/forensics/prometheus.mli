(** Prometheus text-format exposition of the telemetry registry.

    Renders a {!Deflection_telemetry.Telemetry.snapshot} in the Prometheus
    text exposition format (version 0.0.4): counters become
    [<name>_total], histograms become the conventional cumulative
    [<name>_bucket{le="..."}] series plus [<name>_sum] and [<name>_count],
    always ending with the [le="+Inf"] bucket. Metric names are sanitized
    to the legal charset [[a-zA-Z_:][a-zA-Z0-9_:]*] (every other character
    becomes [_]), and each family carries [# HELP] / [# TYPE] headers so
    the output scrapes cleanly. *)

val sanitize_name : string -> string
(** Map an arbitrary telemetry name (e.g. ["interp.class.alu"]) to a legal
    Prometheus metric name (["interp_class_alu"]). *)

val of_snapshot : ?prefix:string -> Deflection_telemetry.Telemetry.snapshot -> string
(** The full exposition document. [prefix] (default ["deflection"]) is
    prepended to every metric name as ["<prefix>_"]. *)

val build_info : ?name:string -> labels:(string * string) list -> unit -> string
(** A conventional [deflection_build_info] info-style gauge (value 1, the
    identity in the labels — git revision, tool version, schema
    versions), prepended by the CLI to every exposition it writes. Label
    names are sanitized; label values are escaped per the text format. *)

val of_hdr_families :
  ?prefix:string -> (string * Deflection_telemetry.Hdr.t) list -> string
(** Exposition of percentile-accurate log-bucketed histograms (the
    gateway's per-stage latency plane): each family becomes the
    conventional cumulative [<name>_bucket{le="..."}] series — one line
    per occupied log bucket, counts accumulated in bound order, closed by
    [le="+Inf"] — plus [<name>_sum] and [<name>_count]. The output is
    OpenMetrics-compatible (monotone cumulative buckets, counts equal at
    [+Inf] and [_count]). *)
