(** The interpreter's flight recorder (black box).

    A bounded ring of fine-grained execution events — retired program
    counters, branch outcomes, ECall/OCall transitions, AEX context dumps
    and abnormal exits — recorded by the interpreter stepping loop so
    that, on a policy abort or runtime fault, the last moments of the
    program can be frozen into a crash report ({!Report.crash}).

    Design constraints (see DESIGN.md, "Flight recorder"):

    - {e zero allocation when off}: {!disabled} short-circuits every
      {!record} on a single boolean field test, and the interpreter guards
      its call sites with {!enabled};
    - {e zero allocation when on}: the ring is three pre-sized [int]
      arrays (kind / pc / argument), so steady-state recording is three
      array stores and two integer bumps — no boxing, no lists;
    - {e bounded}: once full, new events overwrite the oldest, which are
      counted as dropped. Entries materialize into records only when the
      ring is frozen by {!entries}. *)

type kind =
  | Retired  (** an instruction retired at [pc] *)
  | Branch_taken  (** conditional/indirect transfer at [pc]; [arg] = target *)
  | Branch_not_taken  (** conditional fall-through at [pc]; [arg] = next pc *)
  | Ocall  (** enclave exit at [pc]; [arg] = host function index *)
  | Ecall  (** host entered the enclave; [arg] = ECall ordinal *)
  | Aex  (** asynchronous exit injected at [pc]; [arg] = running AEX count *)
  | Abort  (** policy abort raised at [pc]; [arg] = abort exit code (low bits) *)
  | Fault  (** runtime fault at [pc] (memory fault, bad decode, div#0...) *)

val kind_label : kind -> string
val pp_kind : Format.formatter -> kind -> unit

type entry = {
  seq : int;  (** strictly increasing per recorder *)
  ekind : kind;
  pc : int;
  arg : int;  (** kind-specific payload; 0 when unused *)
}

val pp_entry : Format.formatter -> entry -> unit

type t

val create : ?capacity:int -> unit -> t
(** A fresh recorder retaining the last [capacity] (default 512, must be
    positive) events. *)

val disabled : t
(** The shared inert instance: {!record} returns immediately, {!entries}
    is empty. Default argument of the interpreter hook. *)

val enabled : t -> bool
(** One boolean field read — the hot-path guard. *)

val record : t -> kind -> pc:int -> arg:int -> unit
(** Append one event (overwriting the oldest when full). No-op on
    {!disabled}. *)

val entries : t -> entry list
(** Freeze: the retained events, oldest first. Allocation happens here,
    not on the recording path. *)

val recorded : t -> int
(** Total events ever recorded (retained + dropped). *)

val dropped : t -> int
val capacity : t -> int
