module Telemetry = Deflection_telemetry.Telemetry
module Hdr = Deflection_telemetry.Hdr

let legal_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let legal c = legal_first c || (c >= '0' && c <= '9')

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c ->
        let ok = if i = 0 then legal_first c else legal c in
        if not ok then Bytes.set b i '_')
      b;
    Bytes.to_string b
  end

let of_snapshot ?(prefix = "deflection") (snap : Telemetry.snapshot) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let metric raw = sanitize_name (prefix ^ "_" ^ raw) in
  List.iter
    (fun (raw, value) ->
      let name = metric raw ^ "_total" in
      add "# HELP %s Telemetry counter %s\n" name raw;
      add "# TYPE %s counter\n" name;
      add "%s %d\n" name value)
    snap.Telemetry.counters;
  List.iter
    (fun (raw, (h : Telemetry.hist_summary)) ->
      let name = metric raw in
      add "# HELP %s Telemetry histogram %s\n" name raw;
      add "# TYPE %s histogram\n" name;
      let cumulative = ref 0 in
      List.iter
        (fun (ub, count) ->
          cumulative := !cumulative + count;
          add "%s_bucket{le=\"%d\"} %d\n" name ub !cumulative)
        h.Telemetry.h_buckets;
      add "%s_bucket{le=\"+Inf\"} %d\n" name h.Telemetry.h_count;
      add "%s_sum %d\n" name h.Telemetry.h_sum;
      add "%s_count %d\n" name h.Telemetry.h_count)
    snap.Telemetry.histograms;
  Buffer.contents buf

let build_info ?(name = "deflection_build_info") ~labels () =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let quote v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b
  in
  let name = sanitize_name name in
  add "# HELP %s Build and schema identity of the producing binary.\n" name;
  add "# TYPE %s gauge\n" name;
  add "%s{%s} 1\n" name
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize_name k) (quote v)) labels));
  Buffer.contents buf

let of_hdr_families ?(prefix = "deflection") families =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (raw, h) ->
      let name = sanitize_name (prefix ^ "_" ^ raw) in
      add "# HELP %s Log-bucketed latency histogram %s\n" name raw;
      add "# TYPE %s histogram\n" name;
      (* cumulative counts per inclusive upper bound, as the exposition
         format requires; the log-bucket bounds become the le labels *)
      let cumulative = ref 0 in
      List.iter
        (fun (ub, count) ->
          cumulative := !cumulative + count;
          add "%s_bucket{le=\"%d\"} %d\n" name ub !cumulative)
        (Hdr.nonzero_buckets h);
      add "%s_bucket{le=\"+Inf\"} %d\n" name (Hdr.count h);
      add "%s_sum %d\n" name (Hdr.sum h);
      add "%s_count %d\n" name (Hdr.count h))
    families;
  Buffer.contents buf
