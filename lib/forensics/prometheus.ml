module Telemetry = Deflection_telemetry.Telemetry

let legal_first c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let legal c = legal_first c || (c >= '0' && c <= '9')

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c ->
        let ok = if i = 0 then legal_first c else legal c in
        if not ok then Bytes.set b i '_')
      b;
    Bytes.to_string b
  end

let of_snapshot ?(prefix = "deflection") (snap : Telemetry.snapshot) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let metric raw = sanitize_name (prefix ^ "_" ^ raw) in
  List.iter
    (fun (raw, value) ->
      let name = metric raw ^ "_total" in
      add "# HELP %s Telemetry counter %s\n" name raw;
      add "# TYPE %s counter\n" name;
      add "%s %d\n" name value)
    snap.Telemetry.counters;
  List.iter
    (fun (raw, (h : Telemetry.hist_summary)) ->
      let name = metric raw in
      add "# HELP %s Telemetry histogram %s\n" name raw;
      add "# TYPE %s histogram\n" name;
      let cumulative = ref 0 in
      List.iter
        (fun (ub, count) ->
          cumulative := !cumulative + count;
          add "%s_bucket{le=\"%d\"} %d\n" name ub !cumulative)
        h.Telemetry.h_buckets;
      add "%s_bucket{le=\"+Inf\"} %d\n" name h.Telemetry.h_count;
      add "%s_sum %d\n" name h.Telemetry.h_sum;
      add "%s_count %d\n" name h.Telemetry.h_count)
    snap.Telemetry.histograms;
  Buffer.contents buf
