module Json = Deflection_telemetry.Json

type t = {
  on : bool;
  ival : int;
  mutable next : int;  (* next cycle threshold that triggers a sample *)
  mutable total : int;
  mutable retired_count : int;
  samples : (int, int) Hashtbl.t;  (* pc -> sample count *)
  mutable symbols : (int * string) array;  (* function entries, sorted by address *)
}

let create ?(interval = 64) () =
  if interval <= 0 then invalid_arg "Profiler.create: interval must be positive";
  {
    on = true;
    ival = interval;
    next = interval;
    total = 0;
    retired_count = 0;
    samples = Hashtbl.create 1024;
    symbols = [||];
  }

let disabled =
  {
    on = false;
    ival = 1;
    next = max_int;
    total = 0;
    retired_count = 0;
    samples = Hashtbl.create 1;
    symbols = [||];
  }

let enabled t = t.on
let interval t = t.ival

let set_symbols t syms =
  if t.on then begin
    let a = Array.of_list (List.map (fun (name, addr) -> (addr, name)) syms) in
    Array.sort (fun (a1, _) (a2, _) -> compare a1 a2) a;
    t.symbols <- a
  end

let bump t pc =
  (match Hashtbl.find_opt t.samples pc with
  | Some n -> Hashtbl.replace t.samples pc (n + 1)
  | None -> Hashtbl.add t.samples pc 1);
  t.total <- t.total + 1

let take_samples t ~cycles ~pc =
  while cycles >= t.next do
    bump t pc;
    t.next <- t.next + t.ival
  done

let on_step t ~cycles ~pc =
  if t.on then begin
    t.retired_count <- t.retired_count + 1;
    if cycles >= t.next then take_samples t ~cycles ~pc
  end

let catch_up t ~cycles ~pc = if t.on then take_samples t ~cycles ~pc

let retired t = t.retired_count
let samples_total t = t.total

(* ------------------------------------------------------------------ *)
(* Symbol resolution and aggregation *)

let unmapped = "<unmapped>"

(* nearest function entry at or below [pc] *)
let locate t pc =
  let a = t.symbols in
  let n = Array.length a in
  if n = 0 || pc < fst a.(0) then (unmapped, pc)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if fst a.(mid) <= pc then lo := mid else hi := mid - 1
    done;
    let addr, name = a.(!lo) in
    (name, pc - addr)
  end

type hotspot = { func : string; offset : int; pc : int; count : int }

let hotspots t =
  Hashtbl.fold
    (fun pc count acc ->
      let func, offset = locate t pc in
      { func; offset; pc; count } :: acc)
    t.samples []
  |> List.sort (fun a b -> if a.count <> b.count then compare b.count a.count else compare a.pc b.pc)

let by_function t =
  let tbl = Hashtbl.create 64 in
  Hashtbl.iter
    (fun pc count ->
      let func, _ = locate t pc in
      Hashtbl.replace tbl func (count + Option.value ~default:0 (Hashtbl.find_opt tbl func)))
    t.samples;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (n1, c1) (n2, c2) -> if c1 <> c2 then compare c2 c1 else compare n1 n2)

let collapsed t =
  let b = Buffer.create 1024 in
  List.iter
    (fun h -> Buffer.add_string b (Printf.sprintf "%s;+0x%x %d\n" h.func h.offset h.count))
    (hotspots t);
  Buffer.contents b

let to_json ?cycles t =
  Json.Obj
    ([
       ("schema", Json.Str "deflection-profile/1");
       ("interval", Json.Int t.ival);
     ]
    @ (match cycles with Some c -> [ ("cycles", Json.Int c) ] | None -> [])
    @ [
        ("samples_total", Json.Int t.total);
        ("retired_instructions", Json.Int t.retired_count);
        ("functions", Json.Obj (List.map (fun (n, c) -> (n, Json.Int c)) (by_function t)));
        ( "hotspots",
          Json.List
            (List.map
               (fun h ->
                 Json.Obj
                   [
                     ("func", Json.Str h.func);
                     ("offset", Json.Int h.offset);
                     ("pc", Json.Int h.pc);
                     ("count", Json.Int h.count);
                   ])
               (hotspots t)) );
        ("collapsed", Json.Str (collapsed t));
      ])

let pp fmt t =
  Format.fprintf fmt "@[<v>profile: %d samples (interval %d cycles), %d instructions retired@,"
    t.total t.ival t.retired_count;
  List.iter
    (fun (name, count) ->
      Format.fprintf fmt "  %-28s %8d samples (%5.1f%%)@," name count
        (if t.total = 0 then 0.0 else 100.0 *. float_of_int count /. float_of_int t.total))
    (by_function t);
  let hot = hotspots t in
  let top = List.filteri (fun i _ -> i < 10) hot in
  if top <> [] then begin
    Format.fprintf fmt "hottest sites:@,";
    List.iter
      (fun h -> Format.fprintf fmt "  %s;+0x%-6x pc=%#x %8d@," h.func h.offset h.pc h.count)
      top
  end;
  Format.fprintf fmt "@]"
