type kind =
  | Retired
  | Branch_taken
  | Branch_not_taken
  | Ocall
  | Ecall
  | Aex
  | Abort
  | Fault

let kind_code = function
  | Retired -> 0
  | Branch_taken -> 1
  | Branch_not_taken -> 2
  | Ocall -> 3
  | Ecall -> 4
  | Aex -> 5
  | Abort -> 6
  | Fault -> 7

let kind_of_code = function
  | 0 -> Retired
  | 1 -> Branch_taken
  | 2 -> Branch_not_taken
  | 3 -> Ocall
  | 4 -> Ecall
  | 5 -> Aex
  | 6 -> Abort
  | _ -> Fault

let kind_label = function
  | Retired -> "retired"
  | Branch_taken -> "branch-taken"
  | Branch_not_taken -> "branch-not-taken"
  | Ocall -> "ocall"
  | Ecall -> "ecall"
  | Aex -> "aex"
  | Abort -> "abort"
  | Fault -> "fault"

let pp_kind fmt k = Format.pp_print_string fmt (kind_label k)

type entry = { seq : int; ekind : kind; pc : int; arg : int }

let pp_entry fmt e =
  match e.ekind with
  | Retired -> Format.fprintf fmt "[%d] retired pc=%#x" e.seq e.pc
  | Branch_taken -> Format.fprintf fmt "[%d] branch pc=%#x -> %#x (taken)" e.seq e.pc e.arg
  | Branch_not_taken ->
    Format.fprintf fmt "[%d] branch pc=%#x -> %#x (fall-through)" e.seq e.pc e.arg
  | Ocall -> Format.fprintf fmt "[%d] ocall %d at pc=%#x" e.seq e.arg e.pc
  | Ecall -> Format.fprintf fmt "[%d] ecall %d" e.seq e.arg
  | Aex -> Format.fprintf fmt "[%d] aex #%d at pc=%#x" e.seq e.arg e.pc
  | Abort -> Format.fprintf fmt "[%d] policy abort at pc=%#x (code %d)" e.seq e.pc e.arg
  | Fault -> Format.fprintf fmt "[%d] fault at pc=%#x" e.seq e.pc

(* Struct-of-arrays ring: recording is three int stores and two bumps, so
   a hot interpreter loop can leave the recorder attached without
   allocating. *)
type t = {
  on : bool;
  cap : int;
  kinds : int array;
  pcs : int array;
  args : int array;
  mutable next : int;  (* next write slot *)
  mutable stored : int;  (* total events ever recorded *)
}

let create ?(capacity = 512) () =
  if capacity <= 0 then invalid_arg "Flight_recorder.create: capacity must be positive";
  {
    on = true;
    cap = capacity;
    kinds = Array.make capacity 0;
    pcs = Array.make capacity 0;
    args = Array.make capacity 0;
    next = 0;
    stored = 0;
  }

let disabled =
  { on = false; cap = 0; kinds = [||]; pcs = [||]; args = [||]; next = 0; stored = 0 }

let enabled t = t.on

let record t kind ~pc ~arg =
  if t.on then begin
    let i = t.next in
    t.kinds.(i) <- kind_code kind;
    t.pcs.(i) <- pc;
    t.args.(i) <- arg;
    t.next <- (if i + 1 = t.cap then 0 else i + 1);
    t.stored <- t.stored + 1
  end

let recorded t = t.stored
let dropped t = if t.stored > t.cap then t.stored - t.cap else 0
let capacity t = t.cap

let entries t =
  if not t.on then []
  else begin
    let len = min t.stored t.cap in
    let first = if t.stored <= t.cap then 0 else t.next in
    let base_seq = t.stored - len in
    List.init len (fun i ->
        let slot = (first + i) mod t.cap in
        {
          seq = base_seq + i;
          ekind = kind_of_code t.kinds.(slot);
          pc = t.pcs.(slot);
          arg = t.args.(slot);
        })
  end
