module Json = Deflection_telemetry.Json
module Policy = Deflection_policy.Policy
module Annot = Deflection_annot.Annot
module Isa = Deflection_isa.Isa
module Codec = Deflection_isa.Codec

(* ------------------------------------------------------------------ *)
(* Disassembly windows *)

type window_line = { w_addr : int; w_bytes : string; w_text : string; w_fault : bool }

let hex_bytes code off len =
  let b = Buffer.create (len * 3) in
  for i = 0 to len - 1 do
    if i > 0 then Buffer.add_char b ' ';
    Buffer.add_string b (Printf.sprintf "%02x" (Char.code (Bytes.get code (off + i))))
  done;
  Buffer.contents b

(* Linear decode of the whole buffer; undecodable bytes consume one byte
   each so the stream always makes progress. *)
let decode_stream code =
  let len = Bytes.length code in
  let lines = ref [] in
  let off = ref 0 in
  while !off < len do
    let o = !off in
    (match Codec.decode code o with
    | i, dlen ->
      lines := (o, dlen, Format.asprintf "%a" Isa.pp_instr i) :: !lines;
      off := o + dlen
    | exception Codec.Decode_error _ ->
      lines :=
        (o, 1, Printf.sprintf "<bad opcode 0x%02x>" (Char.code (Bytes.get code o))) :: !lines;
      off := o + 1)
  done;
  Array.of_list (List.rev !lines)

let disasm_window ?(before = 8) ?(after = 8) ~code ~base ~pc () =
  let len = Bytes.length code in
  let target = pc - base in
  if len = 0 || target < 0 || target >= len then []
  else begin
    let stream = decode_stream code in
    let idx = ref (-1) in
    Array.iteri (fun i (o, dlen, _) -> if o <= target && target < o + dlen then idx := i) stream;
    if !idx < 0 then []
    else begin
      let lo = max 0 (!idx - before) in
      let hi = min (Array.length stream - 1) (!idx + after) in
      List.init
        (hi - lo + 1)
        (fun k ->
          let i = lo + k in
          let o, dlen, text = stream.(i) in
          { w_addr = base + o; w_bytes = hex_bytes code o dlen; w_text = text; w_fault = i = !idx })
    end
  end

let pp_window fmt window =
  List.iter
    (fun l ->
      Format.fprintf fmt "  %s%#08x: %-24s %s@," (if l.w_fault then "=>" else "  ") l.w_addr
        l.w_bytes l.w_text)
    window

let window_to_json window =
  Json.List
    (List.map
       (fun l ->
         Json.Obj
           [
             ("addr", Json.Int l.w_addr);
             ("bytes", Json.Str l.w_bytes);
             ("text", Json.Str l.w_text);
             ("fault", Json.Bool l.w_fault);
           ])
       window)

(* ------------------------------------------------------------------ *)
(* Crash reports *)

type region = { r_name : string; r_lo : int; r_hi : int; r_perm : string }

type crash = {
  kind : string;
  detail : string;
  policy : Policy.t option;
  abort_stub : string option;
  pc : int;
  instr_bytes : string;
  window : window_line list;
  regs : (string * int64) list;
  regions : region list;
  events : Flight_recorder.entry list;
  events_dropped : int;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
}

let policy_of_abort ~enforced = function
  | Annot.Store ->
    if Policy.Set.mem Policy.P1 enforced then Policy.P1
    else if Policy.Set.mem Policy.P3 enforced then Policy.P3
    else Policy.P4
  | Annot.Rsp -> Policy.P2
  | Annot.Cfi | Annot.Shadow_stack -> Policy.P5
  | Annot.Aex_budget | Annot.Colocation -> Policy.P6

let event_to_json (e : Flight_recorder.entry) =
  Json.Obj
    [
      ("seq", Json.Int e.Flight_recorder.seq);
      ("kind", Json.Str (Flight_recorder.kind_label e.Flight_recorder.ekind));
      ("pc", Json.Int e.Flight_recorder.pc);
      ("arg", Json.Int e.Flight_recorder.arg);
    ]

let crash_to_json c =
  Json.Obj
    [
      ("schema", Json.Str "deflection-forensics/1");
      ("kind", Json.Str "crash");
      ("exit", Json.Str c.kind);
      ("detail", Json.Str c.detail);
      ( "policy",
        match c.policy with None -> Json.Null | Some p -> Json.Str (Policy.name p) );
      ( "abort_stub",
        match c.abort_stub with None -> Json.Null | Some s -> Json.Str s );
      ("pc", Json.Int c.pc);
      ("instr_bytes", Json.Str c.instr_bytes);
      ("window", window_to_json c.window);
      ("regs", Json.Obj (List.map (fun (n, v) -> (n, Json.Str (Printf.sprintf "0x%Lx" v))) c.regs));
      ( "regions",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("name", Json.Str r.r_name);
                   ("lo", Json.Int r.r_lo);
                   ("hi", Json.Int r.r_hi);
                   ("perm", Json.Str r.r_perm);
                 ])
             c.regions) );
      ("events", Json.List (List.map event_to_json c.events));
      ("events_dropped", Json.Int c.events_dropped);
      ( "stats",
        Json.Obj
          [
            ("cycles", Json.Int c.cycles);
            ("instructions", Json.Int c.instructions);
            ("aexes", Json.Int c.aexes);
            ("ocalls", Json.Int c.ocalls);
            ("leaked_bytes", Json.Int c.leaked_bytes);
          ] );
    ]

let pp_crash fmt c =
  Format.fprintf fmt "@[<v>== DEFLECTION crash report ==@,";
  Format.fprintf fmt "exit: %s — %s@," c.kind c.detail;
  (match c.policy with
  | Some p ->
    Format.fprintf fmt "violated policy: %s — %s%s@," (Policy.name p) (Policy.describe p)
      (match c.abort_stub with None -> "" | Some s -> Printf.sprintf " (abort stub %s)" s)
  | None -> ());
  Format.fprintf fmt "fault pc: %#x@," c.pc;
  if c.instr_bytes <> "" then Format.fprintf fmt "instruction bytes: %s@," c.instr_bytes;
  if c.window <> [] then begin
    Format.fprintf fmt "disassembly:@,";
    pp_window fmt c.window
  end;
  Format.fprintf fmt "registers:@,";
  let rec reg_rows = function
    | [] -> ()
    | regs ->
      let row = List.filteri (fun i _ -> i < 4) regs in
      let rest = List.filteri (fun i _ -> i >= 4) regs in
      Format.fprintf fmt " ";
      List.iter (fun (n, v) -> Format.fprintf fmt " %-4s=%016Lx" n v) row;
      Format.fprintf fmt "@,";
      reg_rows rest
  in
  reg_rows c.regs;
  if c.regions <> [] then begin
    Format.fprintf fmt "enclave memory map:@,";
    List.iter
      (fun r ->
        Format.fprintf fmt "  %#08x..%#08x %-4s %s@," r.r_lo r.r_hi r.r_perm r.r_name)
      c.regions
  end;
  let n = List.length c.events in
  if n > 0 || c.events_dropped > 0 then begin
    Format.fprintf fmt "flight recorder (last %d event%s%s):@," n
      (if n = 1 then "" else "s")
      (if c.events_dropped > 0 then Printf.sprintf ", %d older dropped" c.events_dropped else "");
    List.iter (fun e -> Format.fprintf fmt "  %a@," Flight_recorder.pp_entry e) c.events
  end;
  Format.fprintf fmt
    "stats: cycles=%d instructions=%d aexes=%d ocalls=%d leaked_bytes=%d@]" c.cycles
    c.instructions c.aexes c.ocalls c.leaked_bytes

(* ------------------------------------------------------------------ *)
(* Rejection verdicts *)

type verdict = {
  v_pass : string;
  v_offset : int;
  v_reason : string;
  v_window : window_line list;
  v_evidence : string list;
}

let explain_rejection ?text ~pass ~offset ~reason () =
  match text with
  | None -> { v_pass = pass; v_offset = offset; v_reason = reason; v_window = []; v_evidence = [] }
  | Some code ->
    let len = Bytes.length code in
    let evidence = ref [] in
    let add e = evidence := e :: !evidence in
    if len = 0 then add "text section is empty"
    else if offset < 0 || offset >= len then
      add (Printf.sprintf "offset %#x lies outside the text section (0..%#x)" offset (len - 1))
    else begin
      (* where does the offset fall in the linear decode? *)
      let stream = decode_stream code in
      let container = ref None in
      Array.iter
        (fun (o, dlen, txt) -> if o <= offset && offset < o + dlen then container := Some (o, txt))
        stream;
      (match !container with
      | Some (o, _) when o = offset ->
        add (Printf.sprintf "offset %#x is an instruction boundary of the linear decode" offset)
      | Some (o, txt) ->
        add
          (Printf.sprintf
             "offset %#x falls %d byte%s inside the instruction at %#x (%s) — a mid-instruction \
              target or overlapping decode"
             offset (offset - o)
             (if offset - o = 1 then "" else "s")
             o txt)
      | None -> ());
      (match Codec.decode code offset with
      | i, dlen ->
        add
          (Printf.sprintf "bytes at %#x decode as: %s  (%s)" offset
             (Format.asprintf "%a" Isa.pp_instr i)
             (hex_bytes code offset dlen))
      | exception Codec.Decode_error _ ->
        add
          (Printf.sprintf "bytes at %#x do not decode (opcode 0x%02x)" offset
             (Char.code (Bytes.get code offset))))
    end;
    let window =
      if len = 0 then []
      else
        let target = max 0 (min offset (len - 1)) in
        disasm_window ~code ~base:0 ~pc:target ()
    in
    { v_pass = pass; v_offset = offset; v_reason = reason; v_window = window;
      v_evidence = List.rev !evidence }

let verdict_to_json v =
  Json.Obj
    [
      ("schema", Json.Str "deflection-forensics/1");
      ("kind", Json.Str "rejection");
      ("pass", Json.Str v.v_pass);
      ("offset", Json.Int v.v_offset);
      ("reason", Json.Str v.v_reason);
      ("window", window_to_json v.v_window);
      ("evidence", Json.List (List.map (fun e -> Json.Str e) v.v_evidence));
    ]

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>== DEFLECTION rejection verdict ==@,";
  Format.fprintf fmt "failed pass: %s@," v.v_pass;
  Format.fprintf fmt "offset: %#x@," v.v_offset;
  Format.fprintf fmt "reason: %s@," v.v_reason;
  if v.v_evidence <> [] then begin
    Format.fprintf fmt "evidence:@,";
    List.iter (fun e -> Format.fprintf fmt "  - %s@," e) v.v_evidence
  end;
  if v.v_window <> [] then begin
    Format.fprintf fmt "disassembly around the offending offset:@,";
    pp_window fmt v.v_window
  end;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Rendering saved documents *)

let field name = function Json.Obj kvs -> List.assoc_opt name kvs | _ -> None

let str_field name j = match field name j with Some (Json.Str s) -> Some s | _ -> None
let int_field name j = match field name j with Some (Json.Int n) -> Some n | _ -> None

let render_window fmt j =
  match field "window" j with
  | Some (Json.List lines) when lines <> [] ->
    Format.fprintf fmt "disassembly:@,";
    List.iter
      (fun l ->
        let fault = match field "fault" l with Some (Json.Bool b) -> b | _ -> false in
        Format.fprintf fmt "  %s%#08x: %-24s %s@,"
          (if fault then "=>" else "  ")
          (Option.value ~default:0 (int_field "addr" l))
          (Option.value ~default:"" (str_field "bytes" l))
          (Option.value ~default:"" (str_field "text" l)))
      lines
  | _ -> ()

let render_crash j =
  Format.asprintf "%a"
    (fun fmt () ->
      Format.fprintf fmt "@[<v>== DEFLECTION crash report ==@,";
      Format.fprintf fmt "exit: %s — %s@,"
        (Option.value ~default:"?" (str_field "exit" j))
        (Option.value ~default:"" (str_field "detail" j));
      (match str_field "policy" j with
      | Some p ->
        Format.fprintf fmt "violated policy: %s%s@," p
          (match Policy.of_name p with
          | Some pol -> " — " ^ Policy.describe pol
          | None -> "")
      | None -> ());
      (match str_field "abort_stub" j with
      | Some s -> Format.fprintf fmt "abort stub: %s@," s
      | None -> ());
      Format.fprintf fmt "fault pc: %#x@," (Option.value ~default:0 (int_field "pc" j));
      (match str_field "instr_bytes" j with
      | Some b when b <> "" -> Format.fprintf fmt "instruction bytes: %s@," b
      | _ -> ());
      render_window fmt j;
      (match field "regs" j with
      | Some (Json.Obj regs) when regs <> [] ->
        Format.fprintf fmt "registers:@,";
        List.iter
          (fun (n, v) ->
            match v with
            | Json.Str s -> Format.fprintf fmt "  %-4s = %s@," n s
            | _ -> ())
          regs
      | _ -> ());
      (match field "regions" j with
      | Some (Json.List rs) when rs <> [] ->
        Format.fprintf fmt "enclave memory map:@,";
        List.iter
          (fun r ->
            Format.fprintf fmt "  %#08x..%#08x %-4s %s@,"
              (Option.value ~default:0 (int_field "lo" r))
              (Option.value ~default:0 (int_field "hi" r))
              (Option.value ~default:"" (str_field "perm" r))
              (Option.value ~default:"" (str_field "name" r)))
          rs
      | _ -> ());
      (match field "events" j with
      | Some (Json.List es) when es <> [] ->
        Format.fprintf fmt "flight recorder (last %d events):@," (List.length es);
        List.iter
          (fun e ->
            Format.fprintf fmt "  [%d] %s pc=%#x arg=%d@,"
              (Option.value ~default:0 (int_field "seq" e))
              (Option.value ~default:"?" (str_field "kind" e))
              (Option.value ~default:0 (int_field "pc" e))
              (Option.value ~default:0 (int_field "arg" e)))
          es
      | _ -> ());
      (match field "stats" j with
      | Some stats ->
        Format.fprintf fmt "stats: cycles=%d instructions=%d aexes=%d ocalls=%d leaked_bytes=%d@,"
          (Option.value ~default:0 (int_field "cycles" stats))
          (Option.value ~default:0 (int_field "instructions" stats))
          (Option.value ~default:0 (int_field "aexes" stats))
          (Option.value ~default:0 (int_field "ocalls" stats))
          (Option.value ~default:0 (int_field "leaked_bytes" stats))
      | None -> ());
      Format.fprintf fmt "@]")
    ()

let render_rejection j =
  Format.asprintf "%a"
    (fun fmt () ->
      Format.fprintf fmt "@[<v>== DEFLECTION rejection verdict ==@,";
      Format.fprintf fmt "failed pass: %s@," (Option.value ~default:"?" (str_field "pass" j));
      Format.fprintf fmt "offset: %#x@," (Option.value ~default:0 (int_field "offset" j));
      Format.fprintf fmt "reason: %s@," (Option.value ~default:"" (str_field "reason" j));
      (match field "evidence" j with
      | Some (Json.List es) when es <> [] ->
        Format.fprintf fmt "evidence:@,";
        List.iter (function Json.Str e -> Format.fprintf fmt "  - %s@," e | _ -> ()) es
      | _ -> ());
      render_window fmt j;
      Format.fprintf fmt "@]")
    ()

let render_profile j =
  Format.asprintf "%a"
    (fun fmt () ->
      Format.fprintf fmt "@[<v>== DEFLECTION profile ==@,";
      Format.fprintf fmt "sampling interval: %d cycles@,"
        (Option.value ~default:0 (int_field "interval" j));
      (match int_field "cycles" j with
      | Some c -> Format.fprintf fmt "cycles: %d@," c
      | None -> ());
      let total = Option.value ~default:0 (int_field "samples_total" j) in
      Format.fprintf fmt "samples: %d@," total;
      Format.fprintf fmt "retired instructions: %d@,"
        (Option.value ~default:0 (int_field "retired_instructions" j));
      (match field "functions" j with
      | Some (Json.Obj fns) when fns <> [] ->
        Format.fprintf fmt "by function:@,";
        List.iter
          (fun (n, v) ->
            match v with
            | Json.Int c ->
              Format.fprintf fmt "  %-28s %8d (%5.1f%%)@," n c
                (if total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int total)
            | _ -> ())
          fns
      | _ -> ());
      (match field "hotspots" j with
      | Some (Json.List hs) when hs <> [] ->
        Format.fprintf fmt "hottest sites:@,";
        List.iteri
          (fun i h ->
            if i < 10 then
              Format.fprintf fmt "  %s;+0x%x pc=%#x %8d@,"
                (Option.value ~default:"?" (str_field "func" h))
                (Option.value ~default:0 (int_field "offset" h))
                (Option.value ~default:0 (int_field "pc" h))
                (Option.value ~default:0 (int_field "count" h)))
          hs
      | _ -> ());
      Format.fprintf fmt "@]")
    ()

let render j =
  match str_field "schema" j with
  | Some "deflection-forensics/1" -> (
    match str_field "kind" j with
    | Some "crash" -> Ok (render_crash j)
    | Some "rejection" -> Ok (render_rejection j)
    | Some k -> Error (Printf.sprintf "unknown forensics document kind %S" k)
    | None -> Error "forensics document has no \"kind\" field")
  | Some "deflection-profile/1" -> Ok (render_profile j)
  | Some s -> Error (Printf.sprintf "unrecognized schema %S" s)
  | None -> Error "document has no \"schema\" field (not a forensics or profile document)"
