(** Crash reports and rejection verdicts — the forensic artifacts.

    When a run ends abnormally (policy abort, memory fault, bad decode,
    division by zero...) the bootstrap freezes the interpreter state into
    a {!crash}: the violated policy clause, the faulting instruction's
    bytes and a decoded disassembly window around it, the register file,
    a snapshot of the enclave memory map with page permissions, and the
    tail of the flight recorder. When the verifier rejects a binary,
    {!explain_rejection} rebuilds the evidence — which pass failed, the
    offending bytes, whether the offset falls mid-instruction in the
    linear decode — into a {!verdict}.

    Both export as pretty text and as [deflection-forensics/1] JSON
    documents; {!render} pretty-prints a saved document (forensics or
    [deflection-profile/1]) back for [deflectionc report]. *)

module Json = Deflection_telemetry.Json
module Policy = Deflection_policy.Policy
module Annot = Deflection_annot.Annot

(** {2 Disassembly windows} *)

type window_line = {
  w_addr : int;
  w_bytes : string;  (** hex bytes, or [""] when undecodable *)
  w_text : string;  (** rendered instruction or a [<bad opcode>] note *)
  w_fault : bool;  (** the line containing the site of interest *)
}

val disasm_window :
  ?before:int -> ?after:int -> code:bytes -> base:int -> pc:int -> unit -> window_line list
(** Decode [code] (whose first byte lives at address [base]) linearly and
    return up to [before] (default 8) instructions preceding [pc], the
    instruction at [pc], and up to [after] (default 8) following it.
    Undecodable bytes become single-byte [<bad opcode>] lines, so the
    window survives garbage. *)

(** {2 Crash reports} *)

type region = { r_name : string; r_lo : int; r_hi : int; r_perm : string }

type crash = {
  kind : string;  (** ["policy-abort"], ["mem-fault"], ["bad-decode"]... *)
  detail : string;  (** one-line human description of the exit *)
  policy : Policy.t option;  (** the violated policy clause, when known *)
  abort_stub : string option;  (** the annotation abort stub that fired *)
  pc : int;  (** faulting / aborting program counter *)
  instr_bytes : string;  (** hex bytes of the faulting instruction *)
  window : window_line list;
  regs : (string * int64) list;  (** full register file at the fault *)
  regions : region list;  (** enclave memory map + page permissions *)
  events : Flight_recorder.entry list;  (** flight-recorder tail, oldest first *)
  events_dropped : int;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
}

val policy_of_abort : enforced:Policy.Set.t -> Annot.abort_reason -> Policy.t
(** The policy clause an abort stub enforces. The materialized store
    bounds check is the intersection of the enforced store policies, so a
    [Store] abort is attributed to the base clause actually in force
    (P1 when enforced, else P3, else P4). *)

val crash_to_json : crash -> Json.t
(** The [deflection-forensics/1] document, [kind] ["crash"]. *)

val pp_crash : Format.formatter -> crash -> unit

(** {2 Rejection verdicts} *)

type verdict = {
  v_pass : string;  (** ["symbols"] | ["scan"] | ["cfg"] *)
  v_offset : int;  (** offending byte offset into the text section *)
  v_reason : string;
  v_window : window_line list;  (** decoded around the offending offset *)
  v_evidence : string list;  (** e.g. mid-instruction-target analysis *)
}

val explain_rejection : ?text:bytes -> pass:string -> offset:int -> reason:string -> unit -> verdict
(** Rebuild the evidence for a verifier rejection. When [text] (the raw
    text section submitted for verification) is available the verdict
    gains a disassembly window around [offset] and an analysis of whether
    the offset lands mid-instruction in the linear decode — the signature
    of overlapping-decode and mid-instruction-target attacks. *)

val verdict_to_json : verdict -> Json.t
(** The [deflection-forensics/1] document, [kind] ["rejection"]. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {2 Rendering saved documents} *)

val render : Json.t -> (string, string) result
(** Pretty-print a saved [deflection-forensics/1] (crash or rejection) or
    [deflection-profile/1] document. [Error] explains an unrecognized or
    malformed document. *)
