module Isa = Deflection_isa.Isa
module Codec = Deflection_isa.Codec
module Objfile = Deflection_isa.Objfile
module Memory = Deflection_enclave.Memory
module Layout = Deflection_enclave.Layout
module Annot = Deflection_annot.Annot
module Policy = Deflection_policy.Policy
module Telemetry = Deflection_telemetry.Telemetry

type error =
  | Text_too_large of { size : int; capacity : int }
  | Data_too_large of { size : int; capacity : int }
  | Unknown_symbol of string
  | Branch_target_not_function of string
  | Branch_table_overflow of int
  | Undecodable of int
  | No_entry of string

let pp_error fmt = function
  | Text_too_large { size; capacity } ->
    Format.fprintf fmt "text section (%d bytes) exceeds the code region (%d bytes)" size capacity
  | Data_too_large { size; capacity } ->
    Format.fprintf fmt "data section (%d bytes) exceeds the data region (%d bytes)" size capacity
  | Unknown_symbol s -> Format.fprintf fmt "relocation against unknown symbol %s" s
  | Branch_target_not_function s ->
    Format.fprintf fmt "indirect-branch list entry %s is not a function symbol" s
  | Branch_table_overflow n ->
    Format.fprintf fmt "indirect-branch list (%d entries) exceeds the branch-table region" n
  | Undecodable off -> Format.fprintf fmt "text is not decodable at offset %#x" off
  | No_entry s -> Format.fprintf fmt "entry symbol %s not found" s

let error_to_string e = Format.asprintf "%a" pp_error e

type loaded = {
  entry_addr : int;
  symbol_addrs : (string * int) list;
  function_addrs : (string * int) list;
  branch_table_addr : int;
  branch_table_len : int;
  text_base : int;
  text_len : int;
  data_base : int;
}

let symbol_addr loaded name = List.assoc_opt name loaded.symbol_addrs

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let load ?(tm = Telemetry.disabled) mem ~aex_threshold (obj : Objfile.t) =
  Telemetry.span tm "load" @@ fun () ->
  let l = Memory.layout mem in
  let code_cap = l.Layout.code_hi - l.Layout.code_lo in
  let data_cap = l.Layout.data_hi - l.Layout.data_lo in
  let text_len = Bytes.length obj.Objfile.text in
  let data_len = Bytes.length obj.Objfile.data + obj.Objfile.bss_size in
  let* () =
    if text_len > code_cap then Error (Text_too_large { size = text_len; capacity = code_cap })
    else Ok ()
  in
  let* () =
    if data_len > data_cap then Error (Data_too_large { size = data_len; capacity = data_cap })
    else Ok ()
  in
  (* 1. copy sections *)
  if text_len > 0 then Memory.priv_write_bytes mem l.Layout.code_lo obj.Objfile.text;
  if Bytes.length obj.Objfile.data > 0 then
    Memory.priv_write_bytes mem l.Layout.data_lo obj.Objfile.data;
  (* 2. rebase symbols *)
  let symbol_addrs =
    List.map
      (fun (s : Objfile.symbol) ->
        let base =
          match s.Objfile.section with
          | Objfile.Text -> l.Layout.code_lo
          | Objfile.Data -> l.Layout.data_lo
        in
        (s.Objfile.name, base + s.Objfile.offset))
      obj.Objfile.symbols
  in
  let find name = List.assoc_opt name symbol_addrs in
  (* 3. apply relocations *)
  let rec apply_relocs = function
    | [] -> Ok ()
    | (r : Deflection_isa.Asm.reloc) :: rest ->
      (match find r.Deflection_isa.Asm.symbol with
      | None -> Error (Unknown_symbol r.Deflection_isa.Asm.symbol)
      | Some addr ->
        Memory.priv_write_u64 mem (l.Layout.code_lo + r.Deflection_isa.Asm.at)
          (Int64.of_int addr);
        apply_relocs rest)
  in
  let* () = apply_relocs obj.Objfile.relocs in
  (* 4. translate the indirect-branch list into the branch-table pages *)
  let capacity = (l.Layout.branch_hi - l.Layout.branch_lo) / 8 in
  let n = List.length obj.Objfile.branch_targets in
  let* () = if n > capacity then Error (Branch_table_overflow n) else Ok () in
  let rec fill i = function
    | [] -> Ok ()
    | name :: rest ->
      (match
         List.find_opt (fun (s : Objfile.symbol) -> s.Objfile.name = name) obj.Objfile.symbols
       with
      | Some s when s.Objfile.section = Objfile.Text && s.Objfile.is_function ->
        Memory.priv_write_u64 mem
          (l.Layout.branch_lo + (8 * i))
          (Int64.of_int (l.Layout.code_lo + s.Objfile.offset));
        fill (i + 1) rest
      | Some _ | None -> Error (Branch_target_not_function name))
  in
  let* () = fill 0 obj.Objfile.branch_targets in
  (* 5. shadow stack, AEX cells, SSA marker *)
  Memory.priv_write_u64 mem (Layout.ss_ptr_cell l) (Int64.of_int (Layout.ss_stack_base l));
  Memory.priv_write_u64 mem (Layout.aex_counter_cell l) 0L;
  Memory.priv_write_u64 mem (Layout.aex_threshold_cell l) (Int64.of_int aex_threshold);
  Memory.priv_write_u64 mem (Layout.colocation_cell l) 1L;
  Memory.priv_write_u64 mem (Layout.ssa_marker_addr l) Annot.marker_value;
  match find obj.Objfile.entry with
  | None -> Error (No_entry obj.Objfile.entry)
  | Some entry_addr ->
    Telemetry.count tm "loader.text_bytes" text_len;
    Telemetry.count tm "loader.data_bytes" data_len;
    Telemetry.count tm "loader.relocs" (List.length obj.Objfile.relocs);
    Telemetry.count tm "loader.branch_entries" n;
    let function_addrs =
      List.filter_map
        (fun (s : Objfile.symbol) ->
          if s.Objfile.section = Objfile.Text && s.Objfile.is_function then
            Some (s.Objfile.name, l.Layout.code_lo + s.Objfile.offset)
          else None)
        obj.Objfile.symbols
    in
    Ok
      {
        entry_addr;
        symbol_addrs;
        function_addrs;
        branch_table_addr = l.Layout.branch_lo;
        branch_table_len = n;
        text_base = l.Layout.code_lo;
        text_len;
        data_base = l.Layout.data_lo;
      }

(* The imm rewriter (paper Section V-B): linear sweep over the loaded text;
   every decoded instruction whose 64-bit immediate field holds a magic
   placeholder gets the real value for this layout and policy set. *)
let rewrite_imms ?(tm = Telemetry.disabled) mem loaded ~policies =
  Telemetry.span tm "rewrite" @@ fun () ->
  let l = Memory.layout mem in
  let p3 = Policy.Set.mem Policy.P3 policies and p4 = Policy.Set.mem Policy.P4 policies in
  let store_lo, store_hi = Layout.store_bounds l ~p3 ~p4 in
  let value_for magic =
    if Int64.equal magic Annot.store_lower_magic then Some (Int64.of_int store_lo)
    else if Int64.equal magic Annot.store_upper_magic then Some (Int64.of_int store_hi)
    else if Int64.equal magic Annot.stack_lower_magic then Some (Int64.of_int l.Layout.stack_lo)
    else if Int64.equal magic Annot.stack_upper_magic then Some (Int64.of_int l.Layout.stack_hi)
    else if Int64.equal magic Annot.ss_cells_magic then Some (Int64.of_int (Layout.ss_ptr_cell l))
    else if Int64.equal magic Annot.branch_table_magic then
      Some (Int64.of_int loaded.branch_table_addr)
    else if Int64.equal magic Annot.branch_len_magic then
      Some (Int64.of_int loaded.branch_table_len)
    else if Int64.equal magic Annot.ssa_marker_magic then
      Some (Int64.of_int (Layout.ssa_marker_addr l))
    else None
  in
  let text = Memory.priv_read_bytes mem loaded.text_base loaded.text_len in
  let rewritten = ref 0 in
  let rec sweep off =
    if off >= loaded.text_len then begin
      Telemetry.count tm "loader.imms_rewritten" !rewritten;
      Ok !rewritten
    end
    else begin
      match Codec.decode text off with
      | exception Codec.Decode_error _ -> Error (Undecodable off)
      | instr, len ->
        (match Codec.imm64_field_offset instr with
        | Some field ->
          let r = Deflection_util.Bytebuf.Reader.of_bytes_at text (off + field) in
          let v = Deflection_util.Bytebuf.Reader.u64 r in
          (match value_for v with
          | Some actual ->
            Memory.priv_write_u64 mem (loaded.text_base + off + field) actual;
            incr rewritten
          | None -> ())
        | None -> ());
        sweep (off + len)
    end
  in
  sweep 0
