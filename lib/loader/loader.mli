(** The in-enclave dynamic loader (paper Sections IV-D, V-B, Figure 6).

    Loads the relocatable target binary into the code region, rebases all
    symbols, translates the indirect-branch list into in-enclave addresses
    (written to the reserved branch-table pages), sets up the shadow stack,
    the runtime cells and the SSA marker, and — after verification — runs
    the imm rewriter that replaces the annotation placeholders with the
    actual bounds for the policy set in force. *)

module Objfile = Deflection_isa.Objfile
module Memory = Deflection_enclave.Memory

type error =
  | Text_too_large of { size : int; capacity : int }
  | Data_too_large of { size : int; capacity : int }
  | Unknown_symbol of string
  | Branch_target_not_function of string
  | Branch_table_overflow of int
  | Undecodable of int  (** linear sweep failed at text offset *)
  | No_entry of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type loaded = {
  entry_addr : int;  (** absolute address of the entry symbol *)
  symbol_addrs : (string * int) list;  (** every symbol, rebased *)
  function_addrs : (string * int) list;
      (** rebased text-section function symbols (runtime stubs included) —
          the symbol map the sampling profiler attributes pcs against *)
  branch_table_addr : int;
  branch_table_len : int;
  text_base : int;
  text_len : int;
  data_base : int;
}

val load :
  ?tm:Deflection_telemetry.Telemetry.t ->
  Memory.t ->
  aex_threshold:int ->
  Objfile.t ->
  (loaded, error) result
(** Steps 1-3 of the consumer: copy sections, relocate, translate the
    branch list, initialize shadow stack / AEX cells / SSA marker. Does
    NOT rewrite immediates — call {!rewrite_imms} after verification.
    [tm] gets a ["load"] span and [loader.*] size counters. *)

val rewrite_imms :
  ?tm:Deflection_telemetry.Telemetry.t ->
  Memory.t ->
  loaded ->
  policies:Deflection_policy.Policy.Set.t ->
  (int, error) result
(** Replace every magic placeholder immediate in the loaded text with the
    real value for this enclave and policy set. Returns the number of
    rewritten fields. *)

val symbol_addr : loaded -> string -> int option
