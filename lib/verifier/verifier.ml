module Isa = Deflection_isa.Isa
module Codec = Deflection_isa.Codec
module Objfile = Deflection_isa.Objfile
module Annot = Deflection_annot.Annot
module Policy = Deflection_policy.Policy
module Telemetry = Deflection_telemetry.Telemetry
module Sha256 = Deflection_crypto.Sha256
open Isa

type pass = Symbols | Scan | Cfg | Witness

let pass_label = function
  | Symbols -> "symbols"
  | Scan -> "scan"
  | Cfg -> "cfg"
  | Witness -> "witness"

type mode = Descent | Witnessed | Witnessed_fallback

let mode_label = function
  | Descent -> "descent"
  | Witnessed -> "witnessed"
  | Witnessed_fallback -> "witnessed-fallback"

let mode_of_label = function
  | "descent" -> Some Descent
  | "witnessed" -> Some Witnessed
  | "witnessed-fallback" | "witnessed_fallback" -> Some Witnessed_fallback
  | _ -> None

type rejection = { pass : pass; offset : int; reason : string }

let pp_rejection fmt r =
  Format.fprintf fmt "rejected at %#x (%s pass): %s" r.offset (pass_label r.pass) r.reason

type report = {
  instructions_checked : int;
  store_annotations : int;
  rsp_annotations : int;
  cfi_annotations : int;
  prologues : int;
  epilogues : int;
  ssa_checks : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "verified: %d instructions, %d store / %d rsp / %d cfi annotations, %d prologues, %d \
     epilogues, %d ssa checks"
    r.instructions_checked r.store_annotations r.rsp_annotations r.cfi_annotations r.prologues
    r.epilogues r.ssa_checks

exception Reject of int * string

let reject offset reason = raise (Reject (offset, reason))

(* A witness-specific rejection: the binary may well be compliant, but the
   witness lied about it (or went stale). Kept distinct from [Reject] so
   the catcher can attribute it to the [Witness] pass even when it fires
   in the middle of the scan replay, and so [Witnessed_fallback] knows
   which rejections are eligible for a descent re-run. *)
exception Reject_w of int * string

let wreject offset reason = raise (Reject_w (offset, reason))

(* P6 slack: the instrumentation pass may delay a marker inspection past
   the nominal period while flags are live; see Instrument.maybe_ssa_check. *)
let ssa_slack = 8

type classification = {
  machinery : (int, unit) Hashtbl.t;
  guarded_stores : (int, unit) Hashtbl.t;
  leaders : (int, unit) Hashtbl.t;
      (* basic-block leader offsets discovered during the descent: branch
         targets, function entries, stubs, the AEX handler and _start.
         A performance hint for the trace tier, not part of the verdict. *)
}

let is_machinery c off = Hashtbl.mem c.machinery off
let is_guarded_store c off = Hashtbl.mem c.guarded_stores off

let empty_classification () =
  { machinery = Hashtbl.create 1; guarded_stores = Hashtbl.create 1; leaders = Hashtbl.create 1 }

let sorted_offsets h = Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare

(* Flat views for persistence: a classification is fully determined by
   its two offset sets, so (sorted offsets out, offsets in) round-trips.
   Leaders are deliberately not persisted — a recovered verdict merely
   loses the block-boundary hint, never soundness. *)
let classification_offsets c = (sorted_offsets c.machinery, sorted_offsets c.guarded_stores)
let classification_leaders c = sorted_offsets c.leaders

let classification_of_offsets ~machinery ~guarded_stores =
  let tbl xs =
    let h = Hashtbl.create (max 1 (List.length xs)) in
    List.iter (fun o -> Hashtbl.replace h o ()) xs;
    h
  in
  { machinery = tbl machinery; guarded_stores = tbl guarded_stores; leaders = Hashtbl.create 1 }

(* Witnessed-replay tables, offset-indexed. [wlens.(off)] is the claimed
   instruction length at a claimed boundary (0 elsewhere), [winstrs.(off)]
   the instruction the validation pass decoded there, [wclaims.(off)] the
   annotation-site claim anchored there. Arrays rather than hash tables
   because the replay consults them once per scanned offset, and reusing
   the validation pass's decode results is what makes the witnessed tier
   fast: a claimed boundary is decoded exactly once per verification. *)
type wtab = {
  wlens : int array;
  winstrs : instr array;
  wclaims : Objfile.site option array;
}

(* Offset-set membership bits, one byte per text offset. The scan probes
   and updates several of these sets per instruction, so they live in a
   single flat byte array ([st.flags], length tlen+1 so a branch target of
   exactly tlen can be tracked) instead of seven hash tables; wild
   out-of-range branch targets — rejected when popped — overflow into the
   small [st.oob] table used only for worklist dedup. *)
let f_visited = 1
let f_starts = 2
let f_interior = 4
let f_members = 8
let f_guarded = 16
let f_ssa = 32
let f_enqueued = 64

type st = {
  text : bytes;
  tlen : int;
  policies : Policy.Set.t;
  ssa_q : int;
  stub_addr : Annot.abort_reason -> int;
  stub_at : (int, Annot.abort_reason) Hashtbl.t;
      (** offset -> abort reason, precomputed so the per-offset stub probe
          in {!scan_run} is one hash lookup instead of a
          [List.find_opt]-over-[List.assoc] scan *)
  aex_handler_off : int;
  start_off : int;
  user_funs : (int, string) Hashtbl.t;  (** offset -> name *)
  (* witnessed replay: when [wt] is set the scan consults the witness
     instead of running the full template try-chain at every offset — see
     [scan_run]. [None] is the classic recursive descent. *)
  wt : wtab option;
  (* classification: [f_*] membership bits per offset. [f_enqueued] marks
     offsets ever pushed on the worklist — converging branches used to
     enqueue the same target once per incoming edge (harmless for the
     verdict thanks to the pop-time visited check, but the worklist grew
     with the in-degree); [enqueue] filters at push time. *)
  flags : Bytes.t;
  oob : (int, unit) Hashtbl.t;  (** out-of-range offsets ever enqueued *)
  mutable jump_targets : (int * int) list;  (** (site, target) of jmp/jcc *)
  mutable call_targets : (int * int) list;
  mutable worklist : int list;
  (* per-pass attribution: wall-clock nanoseconds accumulated by each
     policy-check family during the scan. [now] is [None] when telemetry
     is disabled, so the hot path (bench/fuzz verify throughput) pays one
     match and nothing else. Decode time inside a matched template is
     attributed to the template's policy, not to [decode]. *)
  now : (unit -> int) option;
  mutable ns_decode : int;
  mutable ns_p1_store : int;
  mutable ns_p2_rsp : int;
  mutable ns_p5_cfi : int;
  mutable ns_p5_stack : int;
  mutable ns_p6_ssa : int;
  (* stats *)
  mutable n_instr : int;
  mutable n_store : int;
  mutable n_rsp : int;
  mutable n_cfi : int;
  mutable n_prologue : int;
  mutable n_epilogue : int;
  mutable n_ssa : int;
}

let has p st = Policy.Set.mem p st.policies

(* Flag-set probes. [fmem] treats out-of-range offsets as absent, exactly
   as a hash-table miss did; [fset] callers only pass in-range offsets
   (instruction starts the scan decoded) except [enqueue], which guards. *)
let fmem st mask off =
  off >= 0 && off < Bytes.length st.flags
  && Char.code (Bytes.unsafe_get st.flags off) land mask <> 0

let fset st mask off =
  Bytes.unsafe_set st.flags off
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get st.flags off) lor mask))

(* Push a discovered control-flow target exactly once: skip offsets that
   are already scanned or already pending. The pop-time visited check in
   the drain loop stays as a second line of defense (an offset can become
   visited between enqueue and pop when a fall-through run reaches it). *)
let enqueue st off =
  if off >= 0 && off < Bytes.length st.flags then begin
    if not (fmem st (f_visited lor f_enqueued) off) then begin
      fset st f_enqueued off;
      st.worklist <- off :: st.worklist
    end
  end
  else if not (Hashtbl.mem st.oob off) then begin
    Hashtbl.replace st.oob off ();
    st.worklist <- off :: st.worklist
  end

let decode_at st off =
  match st.wt with
  | Some wt when off >= 0 && off < st.tlen && wt.wlens.(off) > 0 ->
    (* claimed boundary: reuse the validation pass's decode *)
    (wt.winstrs.(off), wt.wlens.(off))
  | _ ->
    if off < 0 || off >= st.tlen then reject off "control flow leaves the text section";
    (match Codec.decode st.text off with
    | exception Codec.Decode_error _ -> reject off "undecodable instruction"
    | instr, len ->
      if off + len > st.tlen then reject off "instruction extends past the text section";
      (instr, len))

(* Try to match a template starting at [off]. Returns the unit offsets and
   the end offset, or None (without raising) on mismatch. *)
let match_template st off (slots : Annot.slot list) : (int array * int) option =
  let n = List.length slots in
  let offsets = Array.make (n + 1) 0 in
  let decoded = Array.make n Nop in
  (* decode pass: any decode failure is a mismatch, not a rejection *)
  let ok =
    try
      let cur = ref off in
      List.iteri
        (fun i _ ->
          offsets.(i) <- !cur;
          if !cur >= st.tlen then raise Exit;
          match st.wt with
          | Some wt when wt.wlens.(!cur) > 0 ->
            decoded.(i) <- wt.winstrs.(!cur);
            cur := !cur + wt.wlens.(!cur)
          | _ -> (
            match Codec.decode st.text !cur with
            | exception Codec.Decode_error _ -> raise Exit
            | instr, len ->
              if !cur + len > st.tlen then raise Exit;
              decoded.(i) <- instr;
              cur := !cur + len))
        slots;
      offsets.(n) <- !cur;
      true
    with Exit -> false
  in
  if not ok then None
  else begin
    let resolve = function
      | Annot.To_abort r -> st.stub_addr r
      | Annot.To_aex_handler -> st.aex_handler_off
      | Annot.Internal i -> offsets.(i)
    in
    let check i slot =
      match (slot, decoded.(i)) with
      | Annot.Exact e, d -> e = d
      | Annot.Jcc_to (c, dst), Jcc (c', Rel r) ->
        c = c' && offsets.(i + 1) + r = resolve dst
      | Annot.Jmp_to dst, Jmp (Rel r) -> offsets.(i + 1) + r = resolve dst
      | Annot.Call_to dst, Call (Rel r) -> offsets.(i + 1) + r = resolve dst
      | (Annot.Jcc_to _ | Annot.Jmp_to _ | Annot.Call_to _), _ -> false
    in
    let all_ok = List.for_all2 (fun i s -> check i s) (List.init n Fun.id) slots in
    if all_ok then Some (Array.sub offsets 0 n, offsets.(n)) else None
  end

let mark_group st unit_offsets end_off =
  fset st f_starts unit_offsets.(0);
  Array.iteri
    (fun i o ->
      fset st (f_visited lor f_members) o;
      if i > 0 then fset st f_interior o)
    unit_offsets;
  st.n_instr <- st.n_instr + Array.length unit_offsets;
  end_off

(* The store group is the Figure-5 template followed by the guarded store;
   the template's lea operand must equal the push-adjusted destination.
   [find_store_group] is pure (no marking, no counters): the witness sweep
   re-matches unreachable claimed groups without perturbing the report. *)
let find_store_group st off : (int array * int) option =
  (* peek at unit 2 to learn the lea operand *)
  let peek_lea () =
    try
      let cur = ref off in
      let skip () =
        match Codec.decode st.text !cur with
        | exception Codec.Decode_error _ -> raise Exit
        | i, len ->
          cur := !cur + len;
          i
      in
      let i1 = skip () in
      let i2 = skip () in
      let i3 = skip () in
      match (i1, i2, i3) with
      | Push (Reg RBX), Push (Reg RAX), Lea (RAX, m) -> Some m
      | _ -> None
    with Exit -> None
  in
  match peek_lea () with
  | None -> None
  | Some m ->
    (match match_template st off (Annot.store_template m) with
    | None -> None
    | Some (units, tmpl_end) ->
      (* the guarded store itself *)
      (match
         (try Some (Codec.decode st.text tmpl_end) with Codec.Decode_error _ -> None)
       with
      | Some (store_instr, slen) when tmpl_end + slen <= st.tlen ->
        (match maystore store_instr with
        | Some m' when Annot.adjust_mem_for_pushes m' 2 = m ->
          Some (Array.append units [| tmpl_end |], tmpl_end + slen)
        | Some _ | None -> None)
      | Some _ | None -> None))

let match_store_group st off : int option =
  match find_store_group st off with
  | None -> None
  | Some (all_units, end_off) ->
    fset st f_guarded all_units.(Array.length all_units - 1);
    Some (mark_group st all_units end_off)

let match_simple_group st off template : int option =
  match match_template st off template with
  | None -> None
  | Some (units, end_off) -> Some (mark_group st units end_off)

(* CFI group: the table-scan template followed by the indirect branch via
   R10. Returns (units, end offset, branch kind). *)
let find_cfi_group st off : (int array * int * [ `Jmp | `Call ]) option =
  match match_template st off Annot.cfi_template with
  | None -> None
  | Some (units, tmpl_end) ->
    (match (try Some (Codec.decode st.text tmpl_end) with Codec.Decode_error _ -> None) with
    | Some (JmpInd (Reg r), len) when r = Annot.cfi_target_reg ->
      Some (Array.append units [| tmpl_end |], tmpl_end + len, `Jmp)
    | Some (CallInd (Reg r), len) when r = Annot.cfi_target_reg ->
      Some (Array.append units [| tmpl_end |], tmpl_end + len, `Call)
    | Some _ | None -> None)

let match_cfi_group st off : (int * [ `Jmp | `Call ]) option =
  match find_cfi_group st off with
  | None -> None
  | Some (all, end_off, kind) -> Some (mark_group st all end_off, kind)

(* A plain instruction that writes RSP must drag the P2 suffix with it. *)
let match_rsp_unit st off instr len : int =
  match match_template st (off + len) Annot.rsp_template with
  | None -> reject off (Format.asprintf "RSP write without P2 annotation: %a" pp_instr instr)
  | Some (units, end_off) ->
    let all = Array.append [| off |] units in
    st.n_rsp <- st.n_rsp + 1;
    mark_group st all end_off

(* ------------------------------------------------------------------ *)
(* Witness validation: the O(n) linear pass. Re-derives every structural
   claim from the raw bytes — nothing the untrusted generator wrote is
   believed without a cross-decode. Returns the boundary map and the
   per-offset claim table the scan replay consults. *)

let validate_witness ~(text : bytes) (w : Objfile.witness) =
  let tlen = Bytes.length text in
  (* stale witness: built for different bytes than were delivered *)
  if not (String.equal w.w_text_digest (Bytes.to_string (Sha256.digest text))) then
    wreject 0 "witness text digest does not match the delivered binary";
  let decodable off =
    match Codec.decode text off with
    | exception Codec.Decode_error _ -> None
    | instr, len -> if off + len > tlen then None else Some (instr, len)
  in
  (* boundary map: strictly increasing, in-range, re-decoded, and the gaps
     between claimed instructions must hold no decodable instruction (a
     gap that decodes is where a lying witness would hide code). The
     decode results are kept in offset-indexed arrays so the scan replay
     and the dead-code sweep never decode a claimed boundary again. *)
  let wlens = Array.make (max tlen 1) 0 in
  let winstrs = Array.make (max tlen 1) Nop in
  let wclaims = Array.make (max tlen 1) None in
  let check_gap from_ until =
    for g = from_ to until - 1 do
      match decodable g with
      | Some _ -> wreject g "witness boundary gap hides a decodable instruction"
      | None -> ()
    done
  in
  let prev_end = ref 0 in
  Array.iter
    (fun (off, len) ->
      if off < !prev_end || len < 1 || off > tlen || len > tlen - off then
        wreject (max 0 off) "witness boundary map is not a monotone in-range tiling";
      check_gap !prev_end off;
      (match decodable off with
      | Some (instr, len') when len' = len -> winstrs.(off) <- instr
      | Some _ -> wreject off "witness boundary length disagrees with the decoded instruction"
      | None -> wreject off "witness boundary does not decode");
      wlens.(off) <- len;
      prev_end := off + len)
    w.w_boundaries;
  check_gap !prev_end tlen;
  let claimed off = off >= 0 && off < tlen && wlens.(off) > 0 in
  (* branch list: every claimed (site, target) must be a claimed boundary
     holding a direct branch whose encoded displacement lands on target *)
  List.iter
    (fun (site, target) ->
      if not (claimed site) then wreject site "witness branch site is not a claimed boundary";
      match winstrs.(site) with
      | Jmp (Rel d) | Jcc (_, Rel d) | Call (Rel d) ->
        if site + wlens.(site) + d <> target then
          wreject site "witness branch target disagrees with the encoded displacement"
      | _ -> wreject site "witness branch site is not a direct branch")
    w.w_branches;
  (* leaders: advisory for downstream consumers, but they must at least be
     claimed instruction boundaries *)
  List.iter
    (fun off ->
      if not (claimed off) then wreject off "witness leader is not a claimed boundary")
    w.w_leaders;
  (* annotation sites: in-range extents anchored on claimed boundaries, at
     most one claim per offset; the template cross-match happens during
     the scan replay (reachable sites) or the final sweep (dead sites) *)
  List.iter
    (fun (s : Objfile.site) ->
      if s.Objfile.w_off < 0 || s.Objfile.w_end <= s.Objfile.w_off || s.Objfile.w_end > tlen
      then wreject (max 0 s.Objfile.w_off) "witness site extent is out of range";
      if not (claimed s.Objfile.w_off) then
        wreject s.Objfile.w_off "witness site is not anchored on a claimed boundary";
      if wclaims.(s.Objfile.w_off) <> None then
        wreject s.Objfile.w_off "duplicate witness site claim";
      wclaims.(s.Objfile.w_off) <- Some s)
    w.w_sites;
  { wlens; winstrs; wclaims }

(* ------------------------------------------------------------------ *)
(* Run scanning *)

type unit_result = Fallthrough of int | End_of_run | Branch_and_fall of int

let scan_plain st off =
  let instr, len =
    match st.now with
    | None -> decode_at st off
    | Some now ->
      let t0 = now () in
      let r = decode_at st off in
      st.ns_decode <- st.ns_decode + now () - t0;
      r
  in
  let end_off = off + len in
  (* witnessed replay: every plain instruction the scan actually reaches
     must be a claimed boundary with the claimed length — reaching code
     the witness did not describe (e.g. a branch into the middle of a
     claimed instruction) means the witness lied about the boundary map *)
  (match st.wt with
  | None -> ()
  | Some wt ->
    let l = wt.wlens.(off) in
    if l = 0 then wreject off "reachable instruction not claimed by the witness boundary map"
    else if l <> len then
      wreject off "instruction length disagrees with the witness boundary map");
  (* policy gates on bare instructions *)
  (match maystore instr with
  | Some _ when has Policy.P1 st ->
    reject off (Format.asprintf "memory store without annotation: %a" pp_instr instr)
  | Some _ | None -> ());
  (match instr with
  | Ret when has Policy.P5 st -> reject off "RET outside a shadow-stack epilogue"
  | (JmpInd _ | CallInd _) when has Policy.P5 st ->
    reject off "indirect branch without CFI annotation"
  | _ -> ());
  if has Policy.P5 st && writes_reg Annot.shadow_stack_reg instr then
    reject off "write to the reserved shadow-stack register";
  if writes_rsp instr && has Policy.P2 st then begin
    let e =
      match st.now with
      | None -> match_rsp_unit st off instr len
      | Some now ->
        let t0 = now () in
        let r = match_rsp_unit st off instr len in
        st.ns_p2_rsp <- st.ns_p2_rsp + now () - t0;
        r
    in
    Fallthrough e
  end
  else begin
    fset st (f_visited lor f_starts) off;
    st.n_instr <- st.n_instr + 1;
    match instr with
    | Jmp (Rel d) ->
      st.jump_targets <- (off, end_off + d) :: st.jump_targets;
      enqueue st (end_off + d);
      End_of_run
    | Jcc (_, Rel d) ->
      st.jump_targets <- (off, end_off + d) :: st.jump_targets;
      enqueue st (end_off + d);
      Branch_and_fall end_off
    | Call (Rel d) ->
      st.call_targets <- (off, end_off + d) :: st.call_targets;
      enqueue st (end_off + d);
      Fallthrough end_off
    | Jmp (Lab _) | Jcc (_, Lab _) | Call (Lab _) -> reject off "unresolved label in binary"
    | Ret -> End_of_run
    | Hlt -> End_of_run
    | JmpInd _ -> End_of_run (* only reachable when P5 is off *)
    | Nop | Mov _ | Lea _ | Push _ | Pop _ | Binop _ | Unop _ | Shift _ | Idiv _ | Cmp _
    | Test _ | CallInd _ | Ocall _ | Fbin _ | Fcmp _ | Cvtsi2sd _ | Cvttsd2si _ | Fsqrt _ ->
      Fallthrough end_off
  end

let scan_run st start =
  let ssa_counter = ref 0 in
  let bump_ssa off =
    if has Policy.P6 st then begin
      incr ssa_counter;
      if !ssa_counter > st.ssa_q + ssa_slack then
        reject off "straight-line run exceeds the SSA inspection period"
    end
  in
  let rec step off =
    if off = st.tlen then reject off "control flow falls off the end of the text"
    else if off < 0 || off > st.tlen then
      reject off "control flow leaves the text section"
    else if fmem st f_visited off then () (* merged with an already-scanned run *)
    else begin
      (* stubs *)
      match Hashtbl.find_opt st.stub_at off with
      | Some r ->
        let template =
          [ Annot.Exact (Mov (Reg RAX, Imm (Annot.abort_exit_code r))); Annot.Exact Hlt ]
        in
        (match match_simple_group st off template with
        | Some _ -> () (* stub ends the run *)
        | None -> reject off "malformed abort stub")
      | None ->
        if off = st.aex_handler_off then begin
          match match_simple_group st off Annot.aex_handler_template with
          | Some _ -> ()
          | None -> reject off "malformed AEX handler"
        end
        else if off = st.start_off then begin
          (* __start: call entry; hlt *)
          let instr, len = decode_at st off in
          match instr with
          | Call (Rel d) ->
            let target = off + len + d in
            st.call_targets <- (off, target) :: st.call_targets;
            enqueue st target;
            fset st (f_visited lor f_starts) off;
            let i2, _ = decode_at st (off + len) in
            if i2 <> Hlt then reject (off + len) "__start must halt after calling the entry";
            fset st (f_visited lor f_starts) (off + len);
            st.n_instr <- st.n_instr + 2
          | _ -> reject off "__start must begin with a direct call"
        end
        else begin
          (* function entry? *)
          let is_fun = Hashtbl.mem st.user_funs off in
          if is_fun && has Policy.P5 st then begin
            match
              (match st.now with
              | None -> match_simple_group st off Annot.prologue_template
              | Some now ->
                let t0 = now () in
                let r = match_simple_group st off Annot.prologue_template in
                st.ns_p5_stack <- st.ns_p5_stack + now () - t0;
                r)
            with
            | Some e ->
              (* in a witnessed replay the prologue is the one template the
                 scan matches unprompted, so lying-by-omission is caught
                 here: a matched prologue must also be claimed *)
              (match st.wt with
              | None -> ()
              | Some wt -> (
                match wt.wclaims.(off) with
                | Some { Objfile.w_kind = Objfile.Wprologue; w_end; _ } when w_end = e -> ()
                | Some _ -> wreject off "function prologue claim disagrees with the code"
                | None -> wreject off "function prologue not claimed by the witness"));
              st.n_prologue <- st.n_prologue + 1;
              bump_ssa off;
              step e
            | None -> reject off "function entry without shadow-stack prologue"
          end
          else begin
            (* annotation groups *)
            let try_ssa () =
              if has Policy.P6 st then
                match
                  (match st.now with
                  | None -> match_simple_group st off Annot.ssa_template
                  | Some now ->
                    let t0 = now () in
                    let r = match_simple_group st off Annot.ssa_template in
                    st.ns_p6_ssa <- st.ns_p6_ssa + now () - t0;
                    r)
                with
                | Some e ->
                  st.n_ssa <- st.n_ssa + 1;
                  fset st f_ssa off;
                  ssa_counter := 0;
                  Some e
                | None -> None
              else None
            in
            let try_store () =
              if has Policy.P1 st then
                match
                  (match st.now with
                  | None -> match_store_group st off
                  | Some now ->
                    let t0 = now () in
                    let r = match_store_group st off in
                    st.ns_p1_store <- st.ns_p1_store + now () - t0;
                    r)
                with
                | Some e ->
                  st.n_store <- st.n_store + 1;
                  Some e
                | None -> None
              else None
            in
            let try_cfi () =
              match st.now with
              | None -> match_cfi_group st off
              | Some now ->
                let t0 = now () in
                let r = match_cfi_group st off in
                st.ns_p5_cfi <- st.ns_p5_cfi + now () - t0;
                r
            in
            let try_epilogue () =
              match st.now with
              | None -> match_simple_group st off Annot.epilogue_template
              | Some now ->
                let t0 = now () in
                let r = match_simple_group st off Annot.epilogue_template in
                st.ns_p5_stack <- st.ns_p5_stack + now () - t0;
                r
            in
            let descent_chain () =
              match try_ssa () with
              | Some e -> step e
              | None ->
                (match try_store () with
                | Some e ->
                  bump_ssa off;
                  step e
                | None ->
                  if has Policy.P5 st then begin
                    match try_cfi () with
                    | Some (e, kind) ->
                      st.n_cfi <- st.n_cfi + 1;
                      bump_ssa off;
                      (match kind with `Jmp -> () | `Call -> step e)
                    | None ->
                      (match try_epilogue () with
                      | Some _ ->
                        st.n_epilogue <- st.n_epilogue + 1
                        (* epilogue ends with ret: end of run *)
                      | None -> plain off)
                  end
                  else plain off)
            in
            match st.wt with
            | None -> descent_chain ()
            | Some wt -> (
              (* witnessed replay: the claim table names the one template
                 the descent chain would have matched here (the Figure-5
                 templates are mutually exclusive — distinct two-instruction
                 heads — so claim-guided matching cannot pick a different
                 template than the priority chain). Claims whose policy is
                 not enforced are ignored exactly as the descent chain
                 ignores the corresponding matcher; an unclaimed offset runs
                 only the plain-instruction gates, which is where a
                 lying-by-omission witness is caught (the bare store /
                 indirect branch / RSP write the omitted claim was hiding
                 rejects on its own). *)
              match wt.wclaims.(off) with
              | Some { Objfile.w_kind = Objfile.Wssa; w_end; _ } when has Policy.P6 st -> (
                match try_ssa () with
                | Some e when e = w_end -> step e
                | Some _ -> wreject off "SSA site extent disagrees with the witness"
                | None -> wreject off "claimed SSA site does not match the canonical template")
              | Some { Objfile.w_kind = Objfile.Wstore; w_end; _ } when has Policy.P1 st -> (
                match try_store () with
                | Some e when e = w_end ->
                  bump_ssa off;
                  step e
                | Some _ -> wreject off "store site extent disagrees with the witness"
                | None -> wreject off "claimed store site does not match the canonical template")
              | Some { Objfile.w_kind = Objfile.Wcfi; w_end; _ } when has Policy.P5 st -> (
                match try_cfi () with
                | Some (e, kind) when e = w_end ->
                  st.n_cfi <- st.n_cfi + 1;
                  bump_ssa off;
                  (match kind with `Jmp -> () | `Call -> step e)
                | Some _ -> wreject off "CFI site extent disagrees with the witness"
                | None -> wreject off "claimed CFI site does not match the canonical template")
              | Some { Objfile.w_kind = Objfile.Wepilogue; w_end; _ } when has Policy.P5 st -> (
                match try_epilogue () with
                | Some e when e = w_end -> st.n_epilogue <- st.n_epilogue + 1
                | Some _ -> wreject off "epilogue extent disagrees with the witness"
                | None -> wreject off "claimed epilogue does not match the canonical template")
              | Some _ | None -> plain off)
          end
        end
    end
  and plain off =
    match scan_plain st off with
    | End_of_run -> ()
    | Fallthrough e ->
      bump_ssa off;
      step e
    | Branch_and_fall e ->
      bump_ssa off;
      step e
  in
  step start

(* ------------------------------------------------------------------ *)
(* Lying-by-omission sweep: after the replay accepted, walk every claimed
   boundary the scan never reached. Dead code the descent would not even
   look at must still be benign under the witness's claims — an unclaimed
   (or mis-claimed) store, RSP write, indirect branch or shadow-stack
   write anywhere in the text rejects. This is deliberately stricter than
   the descent (which ignores unreachable bytes); [Witnessed_fallback]
   recovers descent-equal verdicts for honest witnesses over such
   binaries by re-running the descent on any witness-pass rejection.
   Pure matching only (find_*/match_template): report counters must stay
   byte-identical to the descent's, which never counts unreachable code. *)

let witness_sweep st (w : Objfile.witness) (wt : wtab) =
  let n = Array.length w.w_boundaries in
  let i = ref 0 in
  while !i < n do
    let off, _len = w.w_boundaries.(!i) in
    if fmem st f_visited off then incr i
    else begin
      let skip_to e =
        incr i;
        while !i < n && fst w.w_boundaries.(!i) < e do incr i done
      in
      match wt.wclaims.(off) with
      | Some { Objfile.w_kind = Objfile.Wssa; w_end; _ } when has Policy.P6 st -> (
        match match_template st off Annot.ssa_template with
        | Some (_, e) when e = w_end -> skip_to e
        | Some _ | None -> wreject off "unreachable claimed SSA site does not match the code")
      | Some { Objfile.w_kind = Objfile.Wstore; w_end; _ } when has Policy.P1 st -> (
        match find_store_group st off with
        | Some (_, e) when e = w_end -> skip_to e
        | Some _ | None -> wreject off "unreachable claimed store site does not match the code")
      | Some { Objfile.w_kind = Objfile.Wcfi; w_end; _ } when has Policy.P5 st -> (
        match find_cfi_group st off with
        | Some (_, e, _) when e = w_end -> skip_to e
        | Some _ | None -> wreject off "unreachable claimed CFI site does not match the code")
      | Some { Objfile.w_kind = Objfile.Wprologue; w_end; _ } when has Policy.P5 st -> (
        match match_template st off Annot.prologue_template with
        | Some (_, e) when e = w_end -> skip_to e
        | Some _ | None -> wreject off "unreachable claimed prologue does not match the code")
      | Some { Objfile.w_kind = Objfile.Wepilogue; w_end; _ } when has Policy.P5 st -> (
        match match_template st off Annot.epilogue_template with
        | Some (_, e) when e = w_end -> skip_to e
        | Some _ | None -> wreject off "unreachable claimed epilogue does not match the code")
      | Some { Objfile.w_kind = Objfile.Wrsp; w_end; _ } when has Policy.P2 st ->
        (* validation already decoded every claimed boundary *)
        let instr = wt.winstrs.(off) and ilen = wt.wlens.(off) in
        if not (writes_rsp instr) then
          wreject off "unreachable claimed RSP site does not write RSP";
        (match match_template st (off + ilen) Annot.rsp_template with
        | Some (_, e) when e = w_end -> skip_to e
        | Some _ | None -> wreject off "unreachable claimed RSP site does not match the code")
      | Some _ | None ->
        (* unclaimed (or policy-idle) dead instruction: nothing a policy
           would require an annotation for may live here *)
        let instr = wt.winstrs.(off) in
        (match maystore instr with
        | Some _ when has Policy.P1 st ->
          wreject off "unreachable memory store not claimed by the witness"
        | Some _ | None -> ());
        (match instr with
        | (Ret | JmpInd _ | CallInd _) when has Policy.P5 st ->
          wreject off "unreachable indirect control flow not claimed by the witness"
        | _ -> ());
        if has Policy.P5 st && writes_reg Annot.shadow_stack_reg instr then
          wreject off "unreachable shadow-stack write not claimed by the witness";
        if has Policy.P2 st && writes_rsp instr then
          wreject off "unreachable RSP write not claimed by the witness";
        incr i
    end
  done

(* ------------------------------------------------------------------ *)

(* Per-pass wall-clock attribution, emitted as counters so a session's
   snapshot carries the scan's cost breakdown next to the coarser
   verify.symbols/verify.scan/verify.cfg spans. Emitted on acceptance and
   rejection alike (a rejected scan still did attributable work). *)
let emit_pass_ns tm st =
  if Telemetry.enabled tm then begin
    (* histograms, not counters: the values are wall-clock nanoseconds,
       which belong in the timing-variant plane — the gateway's merged
       counter totals must stay schedule-independent *)
    let emit name v = Telemetry.observe (Telemetry.histogram tm name) v in
    emit "verifier.pass_ns.decode" st.ns_decode;
    emit "verifier.pass_ns.p1_store" st.ns_p1_store;
    emit "verifier.pass_ns.p2_rsp" st.ns_p2_rsp;
    emit "verifier.pass_ns.p5_cfi" st.ns_p5_cfi;
    emit "verifier.pass_ns.p5_stack" st.ns_p5_stack;
    emit "verifier.pass_ns.p6_ssa" st.ns_p6_ssa
  end

let verify_with ?(tm = Telemetry.disabled) ~policies ~ssa_q
    ~(witness : Objfile.witness option) (obj : Objfile.t) =
  Telemetry.span tm "verify" @@ fun () ->
  let current_pass = ref Symbols in
  let st_cell = ref None in
  try
    let text = obj.Objfile.text in
    (* witness structural validation runs first: boundary re-decode, gap
       audit, branch/leader/site anchoring — the linear O(n) pass *)
    let wtables =
      match witness with
      | None -> None
      | Some w ->
        current_pass := Witness;
        let tables = Telemetry.span tm "verify.witness" (fun () -> validate_witness ~text w) in
        current_pass := Symbols;
        Some tables
    in
    let sym name =
      match Objfile.find_symbol obj name with
      | Some s when s.Objfile.section = Objfile.Text -> Some s.Objfile.offset
      | Some _ | None -> None
    in
    let require name =
      match sym name with
      | Some off -> off
      | None -> reject 0 ("missing required symbol " ^ name)
    in
    let stub_tbl, aex_handler_off, start_off, stub_offsets, user_funs =
      Telemetry.span tm "verify.symbols" @@ fun () ->
      let stub_tbl =
        List.map (fun r -> (r, require (Annot.abort_symbol r))) Annot.all_abort_reasons
      in
      let aex_handler_off = require Annot.aex_handler_symbol in
      let start_off = require Annot.start_symbol in
      let stub_offsets =
        (start_off :: aex_handler_off :: List.map snd stub_tbl)
      in
      let user_funs = Hashtbl.create 16 in
      List.iter
        (fun (s : Objfile.symbol) ->
          if
            s.Objfile.section = Objfile.Text && s.Objfile.is_function
            && not (List.mem s.Objfile.offset stub_offsets)
          then Hashtbl.replace user_funs s.Objfile.offset s.Objfile.name)
        obj.Objfile.symbols;
      (* the indirect-branch list must point at user functions *)
      List.iter
        (fun name ->
          match Objfile.find_symbol obj name with
          | Some s when s.Objfile.section = Objfile.Text && s.Objfile.is_function -> ()
          | Some _ | None -> reject 0 ("branch-list entry is not a function: " ^ name))
        obj.Objfile.branch_targets;
      (stub_tbl, aex_handler_off, start_off, stub_offsets, user_funs)
    in
    let stub_addr r = List.assoc r stub_tbl in
    (* offset-keyed views of the symbol tables, built once: scan_run probes
       [stub_at] per offset and the CFG pass probes [stub_offset_set] per
       backward branch. Insertion order mirrors [all_abort_reasons] so a
       (hypothetical) shared offset resolves to the same reason the old
       list scan found first. *)
    let stub_at = Hashtbl.create 16 in
    List.iter
      (fun (r, off) -> if not (Hashtbl.mem stub_at off) then Hashtbl.add stub_at off r)
      stub_tbl;
    let stub_offset_set = Hashtbl.create 16 in
    List.iter (fun off -> Hashtbl.replace stub_offset_set off ()) stub_offsets;
    let st =
      {
        text;
        tlen = Bytes.length text;
        policies;
        ssa_q;
        stub_addr;
        stub_at;
        aex_handler_off;
        start_off;
        user_funs;
        wt = wtables;
        flags = Bytes.make (Bytes.length text + 1) '\000';
        oob = Hashtbl.create 8;
        jump_targets = [];
        call_targets = [];
        worklist = [];
        now = (if Telemetry.enabled tm then Some (fun () -> Telemetry.now_ns tm) else None);
        ns_decode = 0;
        ns_p1_store = 0;
        ns_p2_rsp = 0;
        ns_p5_cfi = 0;
        ns_p5_stack = 0;
        ns_p6_ssa = 0;
        n_instr = 0;
        n_store = 0;
        n_rsp = 0;
        n_cfi = 0;
        n_prologue = 0;
        n_epilogue = 0;
        n_ssa = 0;
      }
    in
    st_cell := Some st;
    (* seed: entry, stubs, every function, every indirect target. The seed
       list is built exactly as before, then deduplicated preserving the
       first pop position of each offset ([_start] appears in both the
       explicit head and [stub_offsets]), so the scan order — and thus
       which rejection fires first on a multi-defect binary — is unchanged
       from the pre-dedup verifier. *)
    st.worklist <- start_off :: stub_offsets;
    Hashtbl.iter (fun off _ -> st.worklist <- off :: st.worklist) user_funs;
    st.worklist <-
      List.filter
        (fun off ->
          if off >= 0 && off < Bytes.length st.flags then
            if fmem st f_enqueued off then false
            else begin
              fset st f_enqueued off;
              true
            end
          else if Hashtbl.mem st.oob off then false
          else begin
            Hashtbl.replace st.oob off ();
            true
          end)
        st.worklist;
    let rec drain () =
      match st.worklist with
      | [] -> ()
      | off :: rest ->
        st.worklist <- rest;
        if not (fmem st f_visited off) then scan_run st off;
        drain ()
    in
    current_pass := Scan;
    Telemetry.span tm "verify.scan" drain;
    (* a-posteriori control-flow target validation *)
    current_pass := Cfg;
    Telemetry.span tm "verify.cfg" (fun () ->
        List.iter
          (fun (site, target) ->
            if fmem st f_interior target then
              reject site "branch target inside an annotation group";
            if not (fmem st f_starts target) then
              reject site "branch target is not an instruction boundary";
            (* every CFG cycle goes through a backward branch: its target must
               carry an SSA inspection (function entries carry their own) *)
            if
              Policy.Set.mem Policy.P6 policies && target <= site
              && not
                   (fmem st f_ssa target
                   || Hashtbl.mem st.user_funs target
                   || Hashtbl.mem stub_offset_set target)
            then reject site "backward branch target without SSA inspection")
          st.jump_targets;
        List.iter
          (fun (site, target) ->
            if not (Hashtbl.mem st.user_funs target || target = st.aex_handler_off) then
              reject site "direct call target is not a function entry")
          st.call_targets);
    (* witnessed tier: lying-by-omission sweep over unreached boundaries.
       Runs last so every defect in reachable code rejects with exactly
       the (pass, offset, reason) triple the descent would produce. *)
    (match (witness, wtables) with
    | Some w, Some wt ->
      current_pass := Witness;
      Telemetry.span tm "verify.sweep" (fun () -> witness_sweep st w wt)
    | _ -> ());
    emit_pass_ns tm st;
    Telemetry.count tm "verifier.instructions" st.n_instr;
    Telemetry.count tm "verifier.annot.store" st.n_store;
    Telemetry.count tm "verifier.annot.rsp" st.n_rsp;
    Telemetry.count tm "verifier.annot.cfi" st.n_cfi;
    Telemetry.count tm "verifier.annot.prologue" st.n_prologue;
    Telemetry.count tm "verifier.annot.epilogue" st.n_epilogue;
    Telemetry.count tm "verifier.annot.ssa" st.n_ssa;
    (* materialize the classification sets from the flag array: machinery
       is members minus guarded stores, leaders are the verified
       basic-block boundaries — every offset the descent proved to be a
       legitimate control-flow entry *)
    let machinery = Hashtbl.create 256 in
    let guarded_stores = Hashtbl.create 64 in
    let leaders = Hashtbl.create 256 in
    for off = 0 to Bytes.length st.flags - 1 do
      let f = Char.code (Bytes.unsafe_get st.flags off) in
      if f land f_members <> 0 && f land f_guarded = 0 then Hashtbl.replace machinery off ();
      if f land f_guarded <> 0 then Hashtbl.replace guarded_stores off ();
      if f land f_starts <> 0 then Hashtbl.replace leaders off ()
    done;
    Hashtbl.iter (fun off _ -> Hashtbl.replace leaders off ()) st.user_funs;
    Hashtbl.iter (fun off _ -> Hashtbl.replace leaders off ()) st.stub_at;
    Hashtbl.replace leaders st.aex_handler_off ();
    Hashtbl.replace leaders st.start_off ();
    Ok
      ( {
          instructions_checked = st.n_instr;
          store_annotations = st.n_store;
          rsp_annotations = st.n_rsp;
          cfi_annotations = st.n_cfi;
          prologues = st.n_prologue;
          epilogues = st.n_epilogue;
          ssa_checks = st.n_ssa;
        },
        { machinery; guarded_stores; leaders } )
  with
  | Reject _ | Reject_w _ as exn ->
    let pass, offset, reason =
      match exn with
      | Reject (offset, reason) -> (!current_pass, offset, reason)
      | Reject_w (offset, reason) -> (Witness, offset, reason)
      | _ -> assert false
    in
    Option.iter (emit_pass_ns tm) !st_cell;
    let r = { pass; offset; reason } in
    if Telemetry.tracing tm then
      Telemetry.event tm "verifier.reject"
        ~args:
          [
            ("pass", pass_label r.pass);
            ("offset", Printf.sprintf "%#x" r.offset);
            ("reason", r.reason);
          ];
    Error r

let verify_classified ?tm ~policies ~ssa_q (obj : Objfile.t) =
  verify_with ?tm ~policies ~ssa_q ~witness:None obj

let verify ?tm ~policies ~ssa_q obj =
  match verify_classified ?tm ~policies ~ssa_q obj with
  | Ok (report, _) -> Ok report
  | Error r -> Error r

let verify_witnessed ?tm ~policies ~ssa_q (obj : Objfile.t) =
  match obj.Objfile.witness with
  | None -> Error { pass = Witness; offset = 0; reason = "binary carries no witness" }
  | Some w -> verify_with ?tm ~policies ~ssa_q ~witness:(Some w) obj

let verify_mode ?(tm = Telemetry.disabled) ~mode ~policies ~ssa_q (obj : Objfile.t) =
  match mode with
  | Descent -> verify_classified ~tm ~policies ~ssa_q obj
  | Witnessed -> verify_witnessed ~tm ~policies ~ssa_q obj
  | Witnessed_fallback -> (
    match verify_witnessed ~tm ~policies ~ssa_q obj with
    | Error { pass = Witness; _ } ->
      (* only witness-attributed rejections fall back: the binary itself
         was never proven bad, only the witness (absent, stale or lying),
         so the descent re-derives the ground-truth verdict *)
      Telemetry.count tm "verifier.witness.fallback" 1;
      verify_classified ~tm ~policies ~ssa_q obj
    | v -> v)

(* ------------------------------------------------------------------ *)
(* Witness construction: the untrusted generator's side. Shares the
   template matchers with the checker above — the witness is honest by
   construction for any binary, including non-compliant ones (the witness
   then faithfully describes the violation, and the replay rejects with
   the descent's exact triple). *)

module Witness = struct
  (* unresolvable abort-stub/handler symbols resolve to a sentinel no
     encodable displacement can reach: the affected templates simply never
     match, and the verifier rejects such a binary in its symbols pass
     before consulting any claim *)
  let sentinel = min_int / 4

  let build_state (obj : Objfile.t) =
    let sym name =
      match Objfile.find_symbol obj name with
      | Some s when s.Objfile.section = Objfile.Text -> Some s.Objfile.offset
      | Some _ | None -> None
    in
    let resolve name = match sym name with Some o -> o | None -> sentinel in
    let text = obj.Objfile.text in
    {
      text;
      tlen = Bytes.length text;
      policies = Policy.Set.p1_p6 (* template matching is policy-blind *);
      ssa_q = obj.Objfile.ssa_q;
      stub_addr = (fun r -> resolve (Annot.abort_symbol r));
      stub_at = Hashtbl.create 1;
      aex_handler_off = resolve Annot.aex_handler_symbol;
      start_off = resolve Annot.start_symbol;
      user_funs = Hashtbl.create 1;
      wt = None;
      flags = Bytes.make (Bytes.length text + 1) '\000';
      oob = Hashtbl.create 1;
      jump_targets = [];
      call_targets = [];
      worklist = [];
      now = None;
      ns_decode = 0;
      ns_p1_store = 0;
      ns_p2_rsp = 0;
      ns_p5_cfi = 0;
      ns_p5_stack = 0;
      ns_p6_ssa = 0;
      n_instr = 0;
      n_store = 0;
      n_rsp = 0;
      n_cfi = 0;
      n_prologue = 0;
      n_epilogue = 0;
      n_ssa = 0;
    }

  let build (obj : Objfile.t) : Objfile.witness =
    let st = build_state obj in
    let text = obj.Objfile.text in
    let tlen = Bytes.length text in
    (* 1. greedy linear boundary map, one-byte resync over undecodable input *)
    let bounds = ref [] in
    let off = ref 0 in
    while !off < tlen do
      match Codec.decode text !off with
      | exception Codec.Decode_error _ -> incr off
      | _, len -> if !off + len > tlen then incr off
        else begin
          bounds := (!off, len) :: !bounds;
          off := !off + len
        end
    done;
    let w_boundaries = Array.of_list (List.rev !bounds) in
    let bset = Hashtbl.create (max 16 (2 * Array.length w_boundaries)) in
    Array.iter (fun (o, l) -> Hashtbl.replace bset o l) w_boundaries;
    (* 2. annotation sites and direct branches over the boundary starts,
       skipping claimed extents (the replay records branches only outside
       matched groups, and so does the witness) *)
    let sites = ref [] in
    let branches = ref [] in
    let nb = Array.length w_boundaries in
    let i = ref 0 in
    while !i < nb do
      let boff, blen = w_boundaries.(!i) in
      let claim kind e =
        sites := { Objfile.w_kind = kind; w_off = boff; w_end = e } :: !sites;
        incr i;
        while !i < nb && fst w_boundaries.(!i) < e do incr i done
      in
      let plain () =
        (match Codec.decode text boff with
        | exception Codec.Decode_error _ -> ()
        | (Jmp (Rel d) | Jcc (_, Rel d) | Call (Rel d)), _ ->
          branches := (boff, boff + blen + d) :: !branches
        | _ -> ());
        incr i
      in
      match match_template st boff Annot.ssa_template with
      | Some (_, e) -> claim Objfile.Wssa e
      | None -> (
        match find_store_group st boff with
        | Some (_, e) -> claim Objfile.Wstore e
        | None -> (
          match find_cfi_group st boff with
          | Some (_, e, _) -> claim Objfile.Wcfi e
          | None -> (
            match match_template st boff Annot.prologue_template with
            | Some (_, e) -> claim Objfile.Wprologue e
            | None -> (
              match match_template st boff Annot.epilogue_template with
              | Some (_, e) -> claim Objfile.Wepilogue e
              | None -> (
                match Codec.decode text boff with
                | exception Codec.Decode_error _ -> incr i
                | instr, _ when writes_rsp instr -> (
                  match match_template st (boff + blen) Annot.rsp_template with
                  | Some (_, e) -> claim Objfile.Wrsp e
                  | None -> plain ())
                | _ -> plain ())))))
    done;
    (* 3. leaders: claimed branch targets and function entries that land on
       instruction boundaries (a corrupt branch target that misses every
       boundary is simply not a leader — the verifier rejects it in its
       CFG pass either way) *)
    let leader_set = Hashtbl.create 64 in
    let add_leader o = if Hashtbl.mem bset o then Hashtbl.replace leader_set o () in
    List.iter (fun (_, t) -> add_leader t) !branches;
    List.iter
      (fun (s : Objfile.symbol) ->
        if s.Objfile.section = Objfile.Text && s.Objfile.is_function then
          add_leader s.Objfile.offset)
      obj.Objfile.symbols;
    {
      Objfile.w_boundaries;
      w_leaders = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) leader_set []);
      w_branches = List.rev !branches;
      w_sites = List.rev !sites;
      w_text_digest = Bytes.to_string (Sha256.digest text);
    }

  let attach (obj : Objfile.t) : Objfile.t = { obj with Objfile.witness = Some (build obj) }
end

(* ------------------------------------------------------------------ *)
(* Measurement-keyed verdict cache: verify once, admit many. *)

module Cache = struct
  module Sha256 = Deflection_crypto.Sha256

  type verdict = (report * classification, rejection) result

  (* An [In_flight] entry is a claim: the domain that inserted it is
     verifying; later arrivals for the same key block on the condition
     until the verdict lands, then re-look-up. This single-flight
     discipline makes hit/miss totals a function of the batch alone, not
     of the domain schedule. A claim whose verifier raised is simply
     removed (no terminal poisoned state): woken waiters find the key
     absent and convert to a fresh miss, so one crashed verification
     never blocks a measurement for the cache's lifetime. *)
  type entry = { mutable state : state; mutable last_used : int }
  and state = In_flight | Done of verdict

  type t = {
    capacity : int;
    mutex : Mutex.t;
    cond : Condition.t;
    table : (string, entry) Hashtbl.t;
    mutable tick : int;  (* logical access clock for LRU *)
    mutable epoch : int option;
        (* when set, accesses stamp this value instead of the tick: a
           server pins the epoch to its round number so LRU victim order
           (and thus eviction under a quota trim) is a function of the
           round's request set, never of the domain schedule inside it *)
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  type stats = { hits : int; misses : int; evictions : int; entries : int; capacity : int }

  let default_capacity = 64

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Verifier.Cache.create: capacity must be positive";
    {
      capacity;
      mutex = Mutex.create ();
      cond = Condition.create ();
      table = Hashtbl.create 64;
      tick = 0;
      epoch = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let capacity (t : t) = t.capacity

  let stats (t : t) =
    Mutex.lock t.mutex;
    let s =
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
      }
    in
    Mutex.unlock t.mutex;
    s

  let stats_to_list s =
    [
      ("hits", s.hits);
      ("misses", s.misses);
      ("evictions", s.evictions);
      ("entries", s.entries);
      ("capacity", s.capacity);
    ]

  (* The key binds everything the verdict depends on: the exact serialized
     objfile (the measurement of the delivered code — which includes the
     witness section, so a witness edit re-keys on its own), the enforced
     policy set, the inspection period and the verification mode. The mode
     is part of the key because the tiers are not extensionally equal: the
     pure witnessed tier is strictly sounder on dead code, and a witnessed
     verdict must never answer a descent request (or vice versa). *)
  let key ~mode ~policies ~ssa_q ~(serialized : bytes) =
    let ctx = Sha256.init () in
    Sha256.update_string ctx (mode_label mode);
    Sha256.update_string ctx "|";
    Sha256.update_string ctx (Policy.Set.label policies);
    Sha256.update_string ctx (Printf.sprintf "|q=%d|" ssa_q);
    Sha256.update ctx serialized;
    Bytes.to_string (Sha256.finalize ctx)

  (* Logical access stamp: the tick by default, the pinned epoch when a
     server has set one (see [set_epoch]). *)
  let stamp t =
    match t.epoch with
    | Some e -> e
    | None ->
      t.tick <- t.tick + 1;
      t.tick

  let set_epoch t e =
    Mutex.lock t.mutex;
    t.epoch <- Some e;
    Mutex.unlock t.mutex

  (* Evict least-recently-used settled entries while over [cap].
     In-flight entries are never evicted (a waiter may hold a reference);
     the table can thus briefly exceed capacity by the number of
     concurrent distinct verifications, but settles back under it. Ties
     on [last_used] (routine under a pinned epoch) break on the key, so
     the victim sequence is a function of the table's contents alone. *)
  let evict_down_to t cap =
    let evicted = ref 0 in
    while
      Hashtbl.length t.table > cap
      &&
      let victim = ref None in
      Hashtbl.iter
        (fun k e ->
          match e.state with
          | In_flight -> ()
          | Done _ -> (
            match !victim with
            | Some (bk, bu) when bu < e.last_used || (bu = e.last_used && bk <= k) -> ()
            | _ -> victim := Some (k, e.last_used)))
        t.table;
      match !victim with
      | None -> false
      | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1;
        incr evicted;
        true
    do
      ()
    done;
    !evicted

  let evict_over_capacity t = ignore (evict_down_to t t.capacity)

  let trim t ~capacity =
    if capacity < 0 then invalid_arg "Verifier.Cache.trim: capacity must be >= 0";
    Mutex.lock t.mutex;
    let n = evict_down_to t capacity in
    Mutex.unlock t.mutex;
    n

  let lookup_or_verify t ?(tm = Telemetry.disabled) ~key:k ~(verify : unit -> verdict) () :
      verdict * [ `Hit | `Miss ] =
    Mutex.lock t.mutex;
    let rec attempt () =
      match Hashtbl.find_opt t.table k with
      | Some e -> (
        e.last_used <- stamp t;
        match e.state with
        | Done v ->
          t.hits <- t.hits + 1;
          Mutex.unlock t.mutex;
          Telemetry.count tm "verifier.cache.hit" 1;
          (v, `Hit)
        | In_flight ->
          (* wait for the claimant to settle, then re-look-up: the claim
             may have landed a verdict (hit on the next attempt) or died
             (key absent — this delivery claims afresh as a miss) *)
          Condition.wait t.cond t.mutex;
          attempt ())
      | None ->
        let e = { state = In_flight; last_used = stamp t } in
        Hashtbl.replace t.table k e;
        t.misses <- t.misses + 1;
        Mutex.unlock t.mutex;
        Telemetry.count tm "verifier.cache.miss" 1;
        (* verify outside the lock: distinct keys verify concurrently *)
        let v =
          match verify () with
          | v -> v
          | exception exn ->
            (* never leave waiters blocked on a dead claim: drop it and
               wake them — they re-attempt and verify afresh *)
            Mutex.lock t.mutex;
            Hashtbl.remove t.table k;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            raise exn
        in
        Mutex.lock t.mutex;
        e.state <- Done v;
        evict_over_capacity t;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        (v, `Miss)
    in
    attempt ()

  let verify_classified_outcome t ?tm ?(mode = Descent) ~policies ~ssa_q ~serialized obj :
      verdict * [ `Hit | `Miss ] =
    let k = key ~mode ~policies ~ssa_q ~serialized in
    lookup_or_verify t ?tm ~key:k
      ~verify:(fun () -> verify_mode ?tm ~mode ~policies ~ssa_q obj)
      ()

  let verify_classified t ?tm ?mode ~policies ~ssa_q ~serialized obj : verdict =
    fst (verify_classified_outcome t ?tm ?mode ~policies ~ssa_q ~serialized obj)

  (* Persistence surface: settled verdicts out, trusted verdicts back in.
     [export] never includes in-flight claims; [preload] never overwrites
     a live entry and never touches hit/miss accounting, so a reloaded
     cache's stats measure only post-restart traffic. *)
  let export t =
    Mutex.lock t.mutex;
    let xs =
      Hashtbl.fold
        (fun k e acc -> match e.state with Done v -> (k, v) :: acc | In_flight -> acc)
        t.table []
    in
    Mutex.unlock t.mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) xs

  let preload t ~key:k (v : verdict) =
    Mutex.lock t.mutex;
    if not (Hashtbl.mem t.table k) then begin
      Hashtbl.replace t.table k { state = Done v; last_used = stamp t };
      evict_over_capacity t
    end;
    Mutex.unlock t.mutex
end
