module Isa = Deflection_isa.Isa
module Codec = Deflection_isa.Codec
module Objfile = Deflection_isa.Objfile
module Annot = Deflection_annot.Annot
module Policy = Deflection_policy.Policy
module Telemetry = Deflection_telemetry.Telemetry
open Isa

type pass = Symbols | Scan | Cfg

let pass_label = function Symbols -> "symbols" | Scan -> "scan" | Cfg -> "cfg"

type rejection = { pass : pass; offset : int; reason : string }

let pp_rejection fmt r =
  Format.fprintf fmt "rejected at %#x (%s pass): %s" r.offset (pass_label r.pass) r.reason

type report = {
  instructions_checked : int;
  store_annotations : int;
  rsp_annotations : int;
  cfi_annotations : int;
  prologues : int;
  epilogues : int;
  ssa_checks : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "verified: %d instructions, %d store / %d rsp / %d cfi annotations, %d prologues, %d \
     epilogues, %d ssa checks"
    r.instructions_checked r.store_annotations r.rsp_annotations r.cfi_annotations r.prologues
    r.epilogues r.ssa_checks

exception Reject of int * string

let reject offset reason = raise (Reject (offset, reason))

(* P6 slack: the instrumentation pass may delay a marker inspection past
   the nominal period while flags are live; see Instrument.maybe_ssa_check. *)
let ssa_slack = 8

type classification = {
  machinery : (int, unit) Hashtbl.t;
  guarded_stores : (int, unit) Hashtbl.t;
  leaders : (int, unit) Hashtbl.t;
      (* basic-block leader offsets discovered during the descent: branch
         targets, function entries, stubs, the AEX handler and _start.
         A performance hint for the trace tier, not part of the verdict. *)
}

let is_machinery c off = Hashtbl.mem c.machinery off
let is_guarded_store c off = Hashtbl.mem c.guarded_stores off

let empty_classification () =
  { machinery = Hashtbl.create 1; guarded_stores = Hashtbl.create 1; leaders = Hashtbl.create 1 }

let sorted_offsets h = Hashtbl.fold (fun k () acc -> k :: acc) h [] |> List.sort compare

(* Flat views for persistence: a classification is fully determined by
   its two offset sets, so (sorted offsets out, offsets in) round-trips.
   Leaders are deliberately not persisted — a recovered verdict merely
   loses the block-boundary hint, never soundness. *)
let classification_offsets c = (sorted_offsets c.machinery, sorted_offsets c.guarded_stores)
let classification_leaders c = sorted_offsets c.leaders

let classification_of_offsets ~machinery ~guarded_stores =
  let tbl xs =
    let h = Hashtbl.create (max 1 (List.length xs)) in
    List.iter (fun o -> Hashtbl.replace h o ()) xs;
    h
  in
  { machinery = tbl machinery; guarded_stores = tbl guarded_stores; leaders = Hashtbl.create 1 }

type st = {
  text : bytes;
  tlen : int;
  policies : Policy.Set.t;
  ssa_q : int;
  stub_addr : Annot.abort_reason -> int;
  stub_at : (int, Annot.abort_reason) Hashtbl.t;
      (** offset -> abort reason, precomputed so the per-offset stub probe
          in {!scan_run} is one hash lookup instead of a
          [List.find_opt]-over-[List.assoc] scan *)
  aex_handler_off : int;
  start_off : int;
  user_funs : (int, string) Hashtbl.t;  (** offset -> name *)
  (* classification *)
  visited : (int, unit) Hashtbl.t;  (** unit start offsets already scanned *)
  starts : (int, unit) Hashtbl.t;  (** legitimate branch-target offsets *)
  interior : (int, unit) Hashtbl.t;  (** instruction starts inside groups *)
  members : (int, unit) Hashtbl.t;  (** every instruction start inside any matched group *)
  guarded : (int, unit) Hashtbl.t;  (** the store instruction each Figure-5 group protects *)
  ssa_starts : (int, unit) Hashtbl.t;
  mutable jump_targets : (int * int) list;  (** (site, target) of jmp/jcc *)
  mutable call_targets : (int * int) list;
  mutable worklist : int list;
  (* per-pass attribution: wall-clock nanoseconds accumulated by each
     policy-check family during the scan. [now] is [None] when telemetry
     is disabled, so the hot path (bench/fuzz verify throughput) pays one
     match and nothing else. Decode time inside a matched template is
     attributed to the template's policy, not to [decode]. *)
  now : (unit -> int) option;
  mutable ns_decode : int;
  mutable ns_p1_store : int;
  mutable ns_p2_rsp : int;
  mutable ns_p5_cfi : int;
  mutable ns_p5_stack : int;
  mutable ns_p6_ssa : int;
  (* stats *)
  mutable n_instr : int;
  mutable n_store : int;
  mutable n_rsp : int;
  mutable n_cfi : int;
  mutable n_prologue : int;
  mutable n_epilogue : int;
  mutable n_ssa : int;
}

let has p st = Policy.Set.mem p st.policies

let decode_at st off =
  if off < 0 || off >= st.tlen then reject off "control flow leaves the text section";
  match Codec.decode st.text off with
  | exception Codec.Decode_error _ -> reject off "undecodable instruction"
  | instr, len ->
    if off + len > st.tlen then reject off "instruction extends past the text section";
    (instr, len)

(* Try to match a template starting at [off]. Returns the unit offsets and
   the end offset, or None (without raising) on mismatch. *)
let match_template st off (slots : Annot.slot list) : (int array * int) option =
  let n = List.length slots in
  let offsets = Array.make (n + 1) 0 in
  let decoded = Array.make n Nop in
  (* decode pass: any decode failure is a mismatch, not a rejection *)
  let ok =
    try
      let cur = ref off in
      List.iteri
        (fun i _ ->
          offsets.(i) <- !cur;
          if !cur >= st.tlen then raise Exit;
          match Codec.decode st.text !cur with
          | exception Codec.Decode_error _ -> raise Exit
          | instr, len ->
            if !cur + len > st.tlen then raise Exit;
            decoded.(i) <- instr;
            cur := !cur + len)
        slots;
      offsets.(n) <- !cur;
      true
    with Exit -> false
  in
  if not ok then None
  else begin
    let resolve = function
      | Annot.To_abort r -> st.stub_addr r
      | Annot.To_aex_handler -> st.aex_handler_off
      | Annot.Internal i -> offsets.(i)
    in
    let check i slot =
      match (slot, decoded.(i)) with
      | Annot.Exact e, d -> e = d
      | Annot.Jcc_to (c, dst), Jcc (c', Rel r) ->
        c = c' && offsets.(i + 1) + r = resolve dst
      | Annot.Jmp_to dst, Jmp (Rel r) -> offsets.(i + 1) + r = resolve dst
      | Annot.Call_to dst, Call (Rel r) -> offsets.(i + 1) + r = resolve dst
      | (Annot.Jcc_to _ | Annot.Jmp_to _ | Annot.Call_to _), _ -> false
    in
    let all_ok = List.for_all2 (fun i s -> check i s) (List.init n Fun.id) slots in
    if all_ok then Some (Array.sub offsets 0 n, offsets.(n)) else None
  end

let mark_group st unit_offsets end_off =
  Hashtbl.replace st.starts unit_offsets.(0) ();
  Array.iteri
    (fun i o ->
      Hashtbl.replace st.visited o ();
      Hashtbl.replace st.members o ();
      if i > 0 then Hashtbl.replace st.interior o ())
    unit_offsets;
  st.n_instr <- st.n_instr + Array.length unit_offsets;
  end_off

(* The store group is the Figure-5 template followed by the guarded store;
   the template's lea operand must equal the push-adjusted destination. *)
let match_store_group st off : int option =
  (* peek at unit 2 to learn the lea operand *)
  let peek_lea () =
    try
      let cur = ref off in
      let skip () =
        match Codec.decode st.text !cur with
        | exception Codec.Decode_error _ -> raise Exit
        | i, len ->
          cur := !cur + len;
          i
      in
      let i1 = skip () in
      let i2 = skip () in
      let i3 = skip () in
      match (i1, i2, i3) with
      | Push (Reg RBX), Push (Reg RAX), Lea (RAX, m) -> Some m
      | _ -> None
    with Exit -> None
  in
  match peek_lea () with
  | None -> None
  | Some m ->
    (match match_template st off (Annot.store_template m) with
    | None -> None
    | Some (units, tmpl_end) ->
      (* the guarded store itself *)
      (match
         (try Some (Codec.decode st.text tmpl_end) with Codec.Decode_error _ -> None)
       with
      | Some (store_instr, slen) when tmpl_end + slen <= st.tlen ->
        (match maystore store_instr with
        | Some m' when Annot.adjust_mem_for_pushes m' 2 = m ->
          let all_units = Array.append units [| tmpl_end |] in
          Hashtbl.replace st.guarded tmpl_end ();
          Some (mark_group st all_units (tmpl_end + slen))
        | Some _ | None -> None)
      | Some _ | None -> None))

let match_simple_group st off template : int option =
  match match_template st off template with
  | None -> None
  | Some (units, end_off) -> Some (mark_group st units end_off)

(* CFI group: the table-scan template followed by the indirect branch via
   R10. Returns (end offset, branch kind). *)
let match_cfi_group st off : (int * [ `Jmp | `Call ]) option =
  match match_template st off Annot.cfi_template with
  | None -> None
  | Some (units, tmpl_end) ->
    (match (try Some (Codec.decode st.text tmpl_end) with Codec.Decode_error _ -> None) with
    | Some (JmpInd (Reg r), len) when r = Annot.cfi_target_reg ->
      let all = Array.append units [| tmpl_end |] in
      Some (mark_group st all (tmpl_end + len), `Jmp)
    | Some (CallInd (Reg r), len) when r = Annot.cfi_target_reg ->
      let all = Array.append units [| tmpl_end |] in
      Some (mark_group st all (tmpl_end + len), `Call)
    | Some _ | None -> None)

(* A plain instruction that writes RSP must drag the P2 suffix with it. *)
let match_rsp_unit st off instr len : int =
  match match_template st (off + len) Annot.rsp_template with
  | None -> reject off (Format.asprintf "RSP write without P2 annotation: %a" pp_instr instr)
  | Some (units, end_off) ->
    let all = Array.append [| off |] units in
    st.n_rsp <- st.n_rsp + 1;
    mark_group st all end_off

(* ------------------------------------------------------------------ *)
(* Run scanning *)

type unit_result = Fallthrough of int | End_of_run | Branch_and_fall of int

let scan_plain st off =
  let instr, len =
    match st.now with
    | None -> decode_at st off
    | Some now ->
      let t0 = now () in
      let r = decode_at st off in
      st.ns_decode <- st.ns_decode + now () - t0;
      r
  in
  let end_off = off + len in
  (* policy gates on bare instructions *)
  (match maystore instr with
  | Some _ when has Policy.P1 st ->
    reject off (Format.asprintf "memory store without annotation: %a" pp_instr instr)
  | Some _ | None -> ());
  (match instr with
  | Ret when has Policy.P5 st -> reject off "RET outside a shadow-stack epilogue"
  | (JmpInd _ | CallInd _) when has Policy.P5 st ->
    reject off "indirect branch without CFI annotation"
  | _ -> ());
  if has Policy.P5 st && writes_reg Annot.shadow_stack_reg instr then
    reject off "write to the reserved shadow-stack register";
  if writes_rsp instr && has Policy.P2 st then begin
    let e =
      match st.now with
      | None -> match_rsp_unit st off instr len
      | Some now ->
        let t0 = now () in
        let r = match_rsp_unit st off instr len in
        st.ns_p2_rsp <- st.ns_p2_rsp + now () - t0;
        r
    in
    Fallthrough e
  end
  else begin
    Hashtbl.replace st.visited off ();
    Hashtbl.replace st.starts off ();
    st.n_instr <- st.n_instr + 1;
    match instr with
    | Jmp (Rel d) ->
      st.jump_targets <- (off, end_off + d) :: st.jump_targets;
      st.worklist <- (end_off + d) :: st.worklist;
      End_of_run
    | Jcc (_, Rel d) ->
      st.jump_targets <- (off, end_off + d) :: st.jump_targets;
      st.worklist <- (end_off + d) :: st.worklist;
      Branch_and_fall end_off
    | Call (Rel d) ->
      st.call_targets <- (off, end_off + d) :: st.call_targets;
      st.worklist <- (end_off + d) :: st.worklist;
      Fallthrough end_off
    | Jmp (Lab _) | Jcc (_, Lab _) | Call (Lab _) -> reject off "unresolved label in binary"
    | Ret -> End_of_run
    | Hlt -> End_of_run
    | JmpInd _ -> End_of_run (* only reachable when P5 is off *)
    | Nop | Mov _ | Lea _ | Push _ | Pop _ | Binop _ | Unop _ | Shift _ | Idiv _ | Cmp _
    | Test _ | CallInd _ | Ocall _ | Fbin _ | Fcmp _ | Cvtsi2sd _ | Cvttsd2si _ | Fsqrt _ ->
      Fallthrough end_off
  end

let scan_run st start =
  let ssa_counter = ref 0 in
  let bump_ssa off =
    if has Policy.P6 st then begin
      incr ssa_counter;
      if !ssa_counter > st.ssa_q + ssa_slack then
        reject off "straight-line run exceeds the SSA inspection period"
    end
  in
  let rec step off =
    if off = st.tlen then reject off "control flow falls off the end of the text"
    else if off < 0 || off > st.tlen then
      reject off "control flow leaves the text section"
    else if Hashtbl.mem st.visited off then () (* merged with an already-scanned run *)
    else begin
      (* stubs *)
      match Hashtbl.find_opt st.stub_at off with
      | Some r ->
        let template =
          [ Annot.Exact (Mov (Reg RAX, Imm (Annot.abort_exit_code r))); Annot.Exact Hlt ]
        in
        (match match_simple_group st off template with
        | Some _ -> () (* stub ends the run *)
        | None -> reject off "malformed abort stub")
      | None ->
        if off = st.aex_handler_off then begin
          match match_simple_group st off Annot.aex_handler_template with
          | Some _ -> ()
          | None -> reject off "malformed AEX handler"
        end
        else if off = st.start_off then begin
          (* __start: call entry; hlt *)
          let instr, len = decode_at st off in
          match instr with
          | Call (Rel d) ->
            let target = off + len + d in
            st.call_targets <- (off, target) :: st.call_targets;
            st.worklist <- target :: st.worklist;
            Hashtbl.replace st.visited off ();
            Hashtbl.replace st.starts off ();
            let i2, _ = decode_at st (off + len) in
            if i2 <> Hlt then reject (off + len) "__start must halt after calling the entry";
            Hashtbl.replace st.visited (off + len) ();
            Hashtbl.replace st.starts (off + len) ();
            st.n_instr <- st.n_instr + 2
          | _ -> reject off "__start must begin with a direct call"
        end
        else begin
          (* function entry? *)
          let is_fun = Hashtbl.mem st.user_funs off in
          if is_fun && has Policy.P5 st then begin
            match
              (match st.now with
              | None -> match_simple_group st off Annot.prologue_template
              | Some now ->
                let t0 = now () in
                let r = match_simple_group st off Annot.prologue_template in
                st.ns_p5_stack <- st.ns_p5_stack + now () - t0;
                r)
            with
            | Some e ->
              st.n_prologue <- st.n_prologue + 1;
              bump_ssa off;
              step e
            | None -> reject off "function entry without shadow-stack prologue"
          end
          else begin
            (* annotation groups *)
            let try_ssa () =
              if has Policy.P6 st then
                match
                  (match st.now with
                  | None -> match_simple_group st off Annot.ssa_template
                  | Some now ->
                    let t0 = now () in
                    let r = match_simple_group st off Annot.ssa_template in
                    st.ns_p6_ssa <- st.ns_p6_ssa + now () - t0;
                    r)
                with
                | Some e ->
                  st.n_ssa <- st.n_ssa + 1;
                  Hashtbl.replace st.ssa_starts off ();
                  ssa_counter := 0;
                  Some e
                | None -> None
              else None
            in
            let try_store () =
              if has Policy.P1 st then
                match
                  (match st.now with
                  | None -> match_store_group st off
                  | Some now ->
                    let t0 = now () in
                    let r = match_store_group st off in
                    st.ns_p1_store <- st.ns_p1_store + now () - t0;
                    r)
                with
                | Some e ->
                  st.n_store <- st.n_store + 1;
                  Some e
                | None -> None
              else None
            in
            match try_ssa () with
            | Some e -> step e
            | None ->
              (match try_store () with
              | Some e ->
                bump_ssa off;
                step e
              | None ->
                if has Policy.P5 st then begin
                  match
                    (match st.now with
                    | None -> match_cfi_group st off
                    | Some now ->
                      let t0 = now () in
                      let r = match_cfi_group st off in
                      st.ns_p5_cfi <- st.ns_p5_cfi + now () - t0;
                      r)
                  with
                  | Some (e, kind) ->
                    st.n_cfi <- st.n_cfi + 1;
                    bump_ssa off;
                    (match kind with `Jmp -> () | `Call -> step e)
                  | None ->
                    (match
                       (match st.now with
                       | None -> match_simple_group st off Annot.epilogue_template
                       | Some now ->
                         let t0 = now () in
                         let r = match_simple_group st off Annot.epilogue_template in
                         st.ns_p5_stack <- st.ns_p5_stack + now () - t0;
                         r)
                     with
                    | Some _ ->
                      st.n_epilogue <- st.n_epilogue + 1
                      (* epilogue ends with ret: end of run *)
                    | None -> plain off)
                end
                else plain off)
          end
        end
    end
  and plain off =
    match scan_plain st off with
    | End_of_run -> ()
    | Fallthrough e ->
      bump_ssa off;
      step e
    | Branch_and_fall e ->
      bump_ssa off;
      step e
  in
  step start

(* ------------------------------------------------------------------ *)

(* Per-pass wall-clock attribution, emitted as counters so a session's
   snapshot carries the scan's cost breakdown next to the coarser
   verify.symbols/verify.scan/verify.cfg spans. Emitted on acceptance and
   rejection alike (a rejected scan still did attributable work). *)
let emit_pass_ns tm st =
  if Telemetry.enabled tm then begin
    (* histograms, not counters: the values are wall-clock nanoseconds,
       which belong in the timing-variant plane — the gateway's merged
       counter totals must stay schedule-independent *)
    let emit name v = Telemetry.observe (Telemetry.histogram tm name) v in
    emit "verifier.pass_ns.decode" st.ns_decode;
    emit "verifier.pass_ns.p1_store" st.ns_p1_store;
    emit "verifier.pass_ns.p2_rsp" st.ns_p2_rsp;
    emit "verifier.pass_ns.p5_cfi" st.ns_p5_cfi;
    emit "verifier.pass_ns.p5_stack" st.ns_p5_stack;
    emit "verifier.pass_ns.p6_ssa" st.ns_p6_ssa
  end

let verify_classified ?(tm = Telemetry.disabled) ~policies ~ssa_q (obj : Objfile.t) =
  Telemetry.span tm "verify" @@ fun () ->
  let current_pass = ref Symbols in
  let st_cell = ref None in
  try
    let text = obj.Objfile.text in
    let sym name =
      match Objfile.find_symbol obj name with
      | Some s when s.Objfile.section = Objfile.Text -> Some s.Objfile.offset
      | Some _ | None -> None
    in
    let require name =
      match sym name with
      | Some off -> off
      | None -> reject 0 ("missing required symbol " ^ name)
    in
    let stub_tbl, aex_handler_off, start_off, stub_offsets, user_funs =
      Telemetry.span tm "verify.symbols" @@ fun () ->
      let stub_tbl =
        List.map (fun r -> (r, require (Annot.abort_symbol r))) Annot.all_abort_reasons
      in
      let aex_handler_off = require Annot.aex_handler_symbol in
      let start_off = require Annot.start_symbol in
      let stub_offsets =
        (start_off :: aex_handler_off :: List.map snd stub_tbl)
      in
      let user_funs = Hashtbl.create 16 in
      List.iter
        (fun (s : Objfile.symbol) ->
          if
            s.Objfile.section = Objfile.Text && s.Objfile.is_function
            && not (List.mem s.Objfile.offset stub_offsets)
          then Hashtbl.replace user_funs s.Objfile.offset s.Objfile.name)
        obj.Objfile.symbols;
      (* the indirect-branch list must point at user functions *)
      List.iter
        (fun name ->
          match Objfile.find_symbol obj name with
          | Some s when s.Objfile.section = Objfile.Text && s.Objfile.is_function -> ()
          | Some _ | None -> reject 0 ("branch-list entry is not a function: " ^ name))
        obj.Objfile.branch_targets;
      (stub_tbl, aex_handler_off, start_off, stub_offsets, user_funs)
    in
    let stub_addr r = List.assoc r stub_tbl in
    (* offset-keyed views of the symbol tables, built once: scan_run probes
       [stub_at] per offset and the CFG pass probes [stub_offset_set] per
       backward branch. Insertion order mirrors [all_abort_reasons] so a
       (hypothetical) shared offset resolves to the same reason the old
       list scan found first. *)
    let stub_at = Hashtbl.create 16 in
    List.iter
      (fun (r, off) -> if not (Hashtbl.mem stub_at off) then Hashtbl.add stub_at off r)
      stub_tbl;
    let stub_offset_set = Hashtbl.create 16 in
    List.iter (fun off -> Hashtbl.replace stub_offset_set off ()) stub_offsets;
    let st =
      {
        text;
        tlen = Bytes.length text;
        policies;
        ssa_q;
        stub_addr;
        stub_at;
        aex_handler_off;
        start_off;
        user_funs;
        visited = Hashtbl.create 4096;
        starts = Hashtbl.create 4096;
        interior = Hashtbl.create 4096;
        members = Hashtbl.create 4096;
        guarded = Hashtbl.create 256;
        ssa_starts = Hashtbl.create 1024;
        jump_targets = [];
        call_targets = [];
        worklist = [];
        now = (if Telemetry.enabled tm then Some (fun () -> Telemetry.now_ns tm) else None);
        ns_decode = 0;
        ns_p1_store = 0;
        ns_p2_rsp = 0;
        ns_p5_cfi = 0;
        ns_p5_stack = 0;
        ns_p6_ssa = 0;
        n_instr = 0;
        n_store = 0;
        n_rsp = 0;
        n_cfi = 0;
        n_prologue = 0;
        n_epilogue = 0;
        n_ssa = 0;
      }
    in
    st_cell := Some st;
    (* seed: entry, stubs, every function, every indirect target *)
    st.worklist <- start_off :: stub_offsets;
    Hashtbl.iter (fun off _ -> st.worklist <- off :: st.worklist) user_funs;
    let rec drain () =
      match st.worklist with
      | [] -> ()
      | off :: rest ->
        st.worklist <- rest;
        if not (Hashtbl.mem st.visited off) then scan_run st off;
        drain ()
    in
    current_pass := Scan;
    Telemetry.span tm "verify.scan" drain;
    (* a-posteriori control-flow target validation *)
    current_pass := Cfg;
    Telemetry.span tm "verify.cfg" (fun () ->
        List.iter
          (fun (site, target) ->
            if Hashtbl.mem st.interior target then
              reject site "branch target inside an annotation group";
            if not (Hashtbl.mem st.starts target) then
              reject site "branch target is not an instruction boundary";
            (* every CFG cycle goes through a backward branch: its target must
               carry an SSA inspection (function entries carry their own) *)
            if
              Policy.Set.mem Policy.P6 policies && target <= site
              && not
                   (Hashtbl.mem st.ssa_starts target
                   || Hashtbl.mem st.user_funs target
                   || Hashtbl.mem stub_offset_set target)
            then reject site "backward branch target without SSA inspection")
          st.jump_targets;
        List.iter
          (fun (site, target) ->
            if not (Hashtbl.mem st.user_funs target || target = st.aex_handler_off) then
              reject site "direct call target is not a function entry")
          st.call_targets);
    emit_pass_ns tm st;
    Telemetry.count tm "verifier.instructions" st.n_instr;
    Telemetry.count tm "verifier.annot.store" st.n_store;
    Telemetry.count tm "verifier.annot.rsp" st.n_rsp;
    Telemetry.count tm "verifier.annot.cfi" st.n_cfi;
    Telemetry.count tm "verifier.annot.prologue" st.n_prologue;
    Telemetry.count tm "verifier.annot.epilogue" st.n_epilogue;
    Telemetry.count tm "verifier.annot.ssa" st.n_ssa;
    let machinery = Hashtbl.copy st.members in
    Hashtbl.iter (fun off () -> Hashtbl.remove machinery off) st.guarded;
    (* export the verified basic-block boundaries: every offset the
       descent proved to be a legitimate control-flow entry *)
    let leaders = Hashtbl.copy st.starts in
    Hashtbl.iter (fun off _ -> Hashtbl.replace leaders off ()) st.user_funs;
    Hashtbl.iter (fun off _ -> Hashtbl.replace leaders off ()) st.stub_at;
    Hashtbl.replace leaders st.aex_handler_off ();
    Hashtbl.replace leaders st.start_off ();
    Ok
      ( {
          instructions_checked = st.n_instr;
          store_annotations = st.n_store;
          rsp_annotations = st.n_rsp;
          cfi_annotations = st.n_cfi;
          prologues = st.n_prologue;
          epilogues = st.n_epilogue;
          ssa_checks = st.n_ssa;
        },
        { machinery; guarded_stores = st.guarded; leaders } )
  with Reject (offset, reason) ->
    Option.iter (emit_pass_ns tm) !st_cell;
    let r = { pass = !current_pass; offset; reason } in
    if Telemetry.tracing tm then
      Telemetry.event tm "verifier.reject"
        ~args:
          [
            ("pass", pass_label r.pass);
            ("offset", Printf.sprintf "%#x" r.offset);
            ("reason", r.reason);
          ];
    Error r

let verify ?tm ~policies ~ssa_q obj =
  match verify_classified ?tm ~policies ~ssa_q obj with
  | Ok (report, _) -> Ok report
  | Error r -> Error r

(* ------------------------------------------------------------------ *)
(* Measurement-keyed verdict cache: verify once, admit many. *)

module Cache = struct
  module Sha256 = Deflection_crypto.Sha256

  type verdict = (report * classification, rejection) result

  (* An [In_flight] entry is a claim: the domain that inserted it is
     verifying; later arrivals for the same key block on the condition
     until the verdict lands, then re-look-up. This single-flight
     discipline makes hit/miss totals a function of the batch alone, not
     of the domain schedule. A claim whose verifier raised is simply
     removed (no terminal poisoned state): woken waiters find the key
     absent and convert to a fresh miss, so one crashed verification
     never blocks a measurement for the cache's lifetime. *)
  type entry = { mutable state : state; mutable last_used : int }
  and state = In_flight | Done of verdict

  type t = {
    capacity : int;
    mutex : Mutex.t;
    cond : Condition.t;
    table : (string, entry) Hashtbl.t;
    mutable tick : int;  (* logical access clock for LRU *)
    mutable epoch : int option;
        (* when set, accesses stamp this value instead of the tick: a
           server pins the epoch to its round number so LRU victim order
           (and thus eviction under a quota trim) is a function of the
           round's request set, never of the domain schedule inside it *)
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  type stats = { hits : int; misses : int; evictions : int; entries : int; capacity : int }

  let default_capacity = 64

  let create ?(capacity = default_capacity) () =
    if capacity < 1 then invalid_arg "Verifier.Cache.create: capacity must be positive";
    {
      capacity;
      mutex = Mutex.create ();
      cond = Condition.create ();
      table = Hashtbl.create 64;
      tick = 0;
      epoch = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let capacity (t : t) = t.capacity

  let stats (t : t) =
    Mutex.lock t.mutex;
    let s =
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
      }
    in
    Mutex.unlock t.mutex;
    s

  let stats_to_list s =
    [
      ("hits", s.hits);
      ("misses", s.misses);
      ("evictions", s.evictions);
      ("entries", s.entries);
      ("capacity", s.capacity);
    ]

  (* The key binds everything the verdict depends on: the exact serialized
     objfile (the measurement of the delivered code), the enforced policy
     set and the inspection period. *)
  let key ~policies ~ssa_q ~(serialized : bytes) =
    let ctx = Sha256.init () in
    Sha256.update_string ctx (Policy.Set.label policies);
    Sha256.update_string ctx (Printf.sprintf "|q=%d|" ssa_q);
    Sha256.update ctx serialized;
    Bytes.to_string (Sha256.finalize ctx)

  (* Logical access stamp: the tick by default, the pinned epoch when a
     server has set one (see [set_epoch]). *)
  let stamp t =
    match t.epoch with
    | Some e -> e
    | None ->
      t.tick <- t.tick + 1;
      t.tick

  let set_epoch t e =
    Mutex.lock t.mutex;
    t.epoch <- Some e;
    Mutex.unlock t.mutex

  (* Evict least-recently-used settled entries while over [cap].
     In-flight entries are never evicted (a waiter may hold a reference);
     the table can thus briefly exceed capacity by the number of
     concurrent distinct verifications, but settles back under it. Ties
     on [last_used] (routine under a pinned epoch) break on the key, so
     the victim sequence is a function of the table's contents alone. *)
  let evict_down_to t cap =
    let evicted = ref 0 in
    while
      Hashtbl.length t.table > cap
      &&
      let victim = ref None in
      Hashtbl.iter
        (fun k e ->
          match e.state with
          | In_flight -> ()
          | Done _ -> (
            match !victim with
            | Some (bk, bu) when bu < e.last_used || (bu = e.last_used && bk <= k) -> ()
            | _ -> victim := Some (k, e.last_used)))
        t.table;
      match !victim with
      | None -> false
      | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1;
        incr evicted;
        true
    do
      ()
    done;
    !evicted

  let evict_over_capacity t = ignore (evict_down_to t t.capacity)

  let trim t ~capacity =
    if capacity < 0 then invalid_arg "Verifier.Cache.trim: capacity must be >= 0";
    Mutex.lock t.mutex;
    let n = evict_down_to t capacity in
    Mutex.unlock t.mutex;
    n

  let lookup_or_verify t ?(tm = Telemetry.disabled) ~key:k ~(verify : unit -> verdict) () :
      verdict * [ `Hit | `Miss ] =
    Mutex.lock t.mutex;
    let rec attempt () =
      match Hashtbl.find_opt t.table k with
      | Some e -> (
        e.last_used <- stamp t;
        match e.state with
        | Done v ->
          t.hits <- t.hits + 1;
          Mutex.unlock t.mutex;
          Telemetry.count tm "verifier.cache.hit" 1;
          (v, `Hit)
        | In_flight ->
          (* wait for the claimant to settle, then re-look-up: the claim
             may have landed a verdict (hit on the next attempt) or died
             (key absent — this delivery claims afresh as a miss) *)
          Condition.wait t.cond t.mutex;
          attempt ())
      | None ->
        let e = { state = In_flight; last_used = stamp t } in
        Hashtbl.replace t.table k e;
        t.misses <- t.misses + 1;
        Mutex.unlock t.mutex;
        Telemetry.count tm "verifier.cache.miss" 1;
        (* verify outside the lock: distinct keys verify concurrently *)
        let v =
          match verify () with
          | v -> v
          | exception exn ->
            (* never leave waiters blocked on a dead claim: drop it and
               wake them — they re-attempt and verify afresh *)
            Mutex.lock t.mutex;
            Hashtbl.remove t.table k;
            Condition.broadcast t.cond;
            Mutex.unlock t.mutex;
            raise exn
        in
        Mutex.lock t.mutex;
        e.state <- Done v;
        evict_over_capacity t;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        (v, `Miss)
    in
    attempt ()

  let verify_classified_outcome t ?tm ~policies ~ssa_q ~serialized obj :
      verdict * [ `Hit | `Miss ] =
    let k = key ~policies ~ssa_q ~serialized in
    lookup_or_verify t ?tm ~key:k
      ~verify:(fun () -> verify_classified ?tm ~policies ~ssa_q obj)
      ()

  let verify_classified t ?tm ~policies ~ssa_q ~serialized obj : verdict =
    fst (verify_classified_outcome t ?tm ~policies ~ssa_q ~serialized obj)

  (* Persistence surface: settled verdicts out, trusted verdicts back in.
     [export] never includes in-flight claims; [preload] never overwrites
     a live entry and never touches hit/miss accounting, so a reloaded
     cache's stats measure only post-restart traffic. *)
  let export t =
    Mutex.lock t.mutex;
    let xs =
      Hashtbl.fold
        (fun k e acc -> match e.state with Done v -> (k, v) :: acc | In_flight -> acc)
        t.table []
    in
    Mutex.unlock t.mutex;
    List.sort (fun (a, _) (b, _) -> String.compare a b) xs

  let preload t ~key:k (v : verdict) =
    Mutex.lock t.mutex;
    if not (Hashtbl.mem t.table k) then begin
      Hashtbl.replace t.table k { state = Done v; last_used = stamp t };
      evict_over_capacity t
    end;
    Mutex.unlock t.mutex
end
