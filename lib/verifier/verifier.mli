(** The in-enclave proof verifier (paper Sections IV-D and V-B).

    A clipped recursive-descent disassembler walks the relocated target
    binary from its entry, following direct control flow and using the
    indirect-branch list to continue at indirect targets, and checks that:

    - every explicit memory store is immediately preceded by a correctly
      constructed Figure-5 bounds annotation (P1/P3/P4);
    - every instruction that writes RSP is immediately followed by the
      stack-range annotation (P2);
    - every indirect call/jump is reached only through the branch-table
      scan with the target in R10, every RET only through the verified
      shadow-stack epilogue, every function entry carries the shadow-stack
      prologue, and no branch target lands {e inside} an annotation or
      between instructions (P5);
    - every basic-block entry begins with an SSA-marker inspection and
      straight-line runs are inspected at least every [q] instructions
      (P6);
    - annotation immediates still hold the expected magic placeholders
      (the imm rewriter runs only after acceptance).

    Any failure rejects the binary. The verifier never modifies the code. *)

module Objfile = Deflection_isa.Objfile

(** Which verification pass rejected the binary (forensics uses this to
    explain verdicts). [Witness] rejections mean the {e witness} was bad —
    absent, stale, structurally invalid, or lying about the code — not
    that the binary itself was proven non-compliant. *)
type pass = Symbols | Scan | Cfg | Witness

val pass_label : pass -> string
(** ["symbols"] | ["scan"] | ["cfg"] | ["witness"]. *)

(** How a binary is verified (threaded through
    [Bootstrap.config.verification]):

    - [Descent] — the classic recursive-descent discovery above.
    - [Witnessed] — {!verify_witnessed}: one linear witness-checked pass.
      Requires a witness; strictly sounder than descent (a witness-pass
      rejection may fire on dead code the descent never looks at).
    - [Witnessed_fallback] — witnessed first; on any [Witness]-pass
      rejection re-runs the descent, so honest witnesses always yield the
      descent's exact verdict while still paying the linear-scan price on
      the common path. *)
type mode = Descent | Witnessed | Witnessed_fallback

val mode_label : mode -> string
(** ["descent"] | ["witnessed"] | ["witnessed-fallback"]. *)

val mode_of_label : string -> mode option

type rejection = { pass : pass; offset : int; reason : string }

val pp_rejection : Format.formatter -> rejection -> unit

type report = {
  instructions_checked : int;  (** decoded instructions, annotations included *)
  store_annotations : int;
  rsp_annotations : int;
  cfi_annotations : int;
  prologues : int;
  epilogues : int;
  ssa_checks : int;
}

val pp_report : Format.formatter -> report -> unit

(** Structural classification of the accepted binary's text offsets, for
    runtime policy monitors: which instruction starts belong to verified
    Figure-5 annotation machinery (and thus legitimately touch the shadow
    stack, counter cells and SSA marker), and which are the guarded target
    stores those groups protect (still subject to bounds monitoring). *)
type classification

val is_machinery : classification -> int -> bool
(** [is_machinery c off] — [off] is an instruction start inside a matched
    annotation group, {e excluding} the guarded store itself. *)

val is_guarded_store : classification -> int -> bool
(** [is_guarded_store c off] — [off] is the store instruction a Figure-5
    bounds template protects. *)

val empty_classification : unit -> classification
(** A classification with no machinery — every store is monitored. *)

val classification_offsets : classification -> int list * int list
(** [(machinery, guarded_stores)] as sorted offset lists — the flat view a
    persistence layer serializes. *)

val classification_of_offsets :
  machinery:int list -> guarded_stores:int list -> classification
(** Rebuild a classification from {!classification_offsets} output. The
    rebuilt value has no {!classification_leaders} — persisted verdicts
    drop the block-boundary hint, never soundness. *)

val classification_leaders : classification -> int list
(** Sorted text offsets of the verified basic-block leaders the recursive
    descent discovered: branch targets, function entries, abort stubs,
    the AEX handler and [_start]. The trace tier uses them (via
    {!Deflection_runtime.Interp.set_block_leaders}) to end compiled
    blocks at control-flow join points instead of re-discovering them. *)

val verify_classified :
  ?tm:Deflection_telemetry.Telemetry.t ->
  policies:Deflection_policy.Policy.Set.t ->
  ssa_q:int ->
  Objfile.t ->
  (report * classification, rejection) result
(** Like {!verify}, but on acceptance also returns the offset
    classification a runtime policy monitor needs to distinguish verified
    machinery stores from target-code stores. *)

val verify :
  ?tm:Deflection_telemetry.Telemetry.t ->
  policies:Deflection_policy.Policy.Set.t ->
  ssa_q:int ->
  Objfile.t ->
  (report, rejection) result
(** Verify the (unrelocated or relocated — annotations are unaffected by
    relocation) target binary against the policy set.

    [tm] (default disabled) gets a ["verify"] span with
    ["verify.symbols"]/["verify.scan"]/["verify.cfg"] children; acceptance
    bumps the ["verifier.instructions"] and ["verifier.annot.*"] counters,
    rejection emits a ["verifier.reject"] event. *)

val verify_witnessed :
  ?tm:Deflection_telemetry.Telemetry.t ->
  policies:Deflection_policy.Policy.Set.t ->
  ssa_q:int ->
  Objfile.t ->
  (report * classification, rejection) result
(** Witness-checked verification: one linear scan instead of recursive
    re-discovery. The binary's witness section is validated structurally
    (every claimed boundary re-decoded; no gap may hide a decodable
    instruction; branch, leader and site claims anchored and cross-decoded;
    text digest checked against the delivered bytes), then the control-flow
    replay consults the claim table — running exactly the one claimed
    Figure-5 matcher at claimed sites and only the plain-instruction policy
    gates elsewhere — and finally a lying-by-omission sweep checks that no
    unreached claimed boundary holds a store, RSP write, indirect branch or
    shadow-stack write the witness failed to claim.

    For an honest witness every rejection in reachable code carries the
    exact (pass, offset, reason) triple {!verify_classified} produces, and
    acceptance yields an identical report and classification. Witness
    defects reject with [pass = Witness]. A binary without a witness is a
    [Witness]-pass rejection. Adds ["verify.witness"]/["verify.sweep"]
    spans around the shared ["verify.*"] tree. *)

val verify_mode :
  ?tm:Deflection_telemetry.Telemetry.t ->
  mode:mode ->
  policies:Deflection_policy.Policy.Set.t ->
  ssa_q:int ->
  Objfile.t ->
  (report * classification, rejection) result
(** Dispatch on {!mode}. [Witnessed_fallback] counts
    ["verifier.witness.fallback"] on [tm] each time a [Witness]-pass
    rejection sends it back to the descent. *)

(** Witness construction — the untrusted generator's half of the
    proof-carrying admission protocol (ROADMAP item 3). *)
module Witness : sig
  val build : Objfile.t -> Objfile.witness
  (** Derive an honest witness from the bytes: greedy linear instruction
      boundaries (one-byte resync across undecodable input), annotation
      sites wherever a canonical Figure-5 template matches, direct-branch
      records outside claimed groups, block leaders, and the text digest.
      Total on arbitrary binaries — for a non-compliant binary the witness
      faithfully describes the violation and the checker rejects with the
      descent's triple. *)

  val attach : Objfile.t -> Objfile.t
  (** [attach obj] is [obj] with [witness = Some (build obj)]. *)
end

(** Measurement-keyed verdict cache: verify once, admit many.

    The key is the SHA-256 of the serialized objfile bytes (the exact
    record the code provider sealed — the measurement of the delivered
    code) bound to the enforced policy set and the SSA inspection period;
    the value is the full verdict, acceptance (report + classification)
    {e or} rejection. A gateway serving N sessions of the same binary
    under the same policy configuration pays the verifier pass once and
    admits (or refuses) the other N-1 from the cache.

    Thread-safe: lookups are single-flight — concurrent sessions racing
    on the same uncached key block on the one in-flight verification
    instead of duplicating it, so hit/miss totals depend only on the
    request multiset, never on the domain schedule. Bounded: settled
    entries are evicted least-recently-used once the table exceeds its
    capacity. *)
module Cache : sig
  type t

  type stats = {
    hits : int;  (** lookups answered from (or merged into) a cached verdict *)
    misses : int;  (** lookups that had to run the verifier *)
    evictions : int;
    entries : int;  (** current table size *)
    capacity : int;
  }

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 64, must be positive) bounds the settled-entry
      count; the least-recently-used verdict is evicted on overflow. *)

  val capacity : t -> int
  val stats : t -> stats

  val stats_to_list : stats -> (string * int) list
  (** [("hits", h); ("misses", m); ...] — for JSON/telemetry export. *)

  val key :
    mode:mode ->
    policies:Deflection_policy.Policy.Set.t ->
    ssa_q:int ->
    serialized:bytes ->
    string
  (** The 32-byte cache key (raw SHA-256 digest). Binds the verification
      mode alongside policies, period and the exact
      serialized objfile — which itself contains the witness section, so
      the witness digest is part of the measurement and distinct witnesses
      for the same text never share an entry. Verdicts can therefore never
      be served across modes. *)

  val lookup_or_verify :
    t ->
    ?tm:Deflection_telemetry.Telemetry.t ->
    key:string ->
    verify:(unit -> (report * classification, rejection) result) ->
    unit ->
    (report * classification, rejection) result * [ `Hit | `Miss ]
  (** Single-flight lookup under an arbitrary key with an injectable
      verify thunk (the cached entry points below are this applied to
      {!Verifier.verify_classified}). A raised [verify] drops the claim
      and wakes waiters, who convert to a fresh miss — a crashed
      verification never wedges its key. *)

  val set_epoch : t -> int -> unit
  (** Pin the LRU access stamp: until the next call, every lookup and
      preload records this value as its recency instead of the internal
      monotone tick. A server sets the epoch to its round number so that
      victim order under {!trim} depends only on {e which} rounds touched
      an entry, not on the domain schedule within a round; ties break on
      the key bytes. *)

  val trim : t -> capacity:int -> int
  (** Evict settled entries least-recently-used-first (ties on the access
      stamp break lexicographically on the key) until at most [capacity]
      remain; returns how many were evicted and counts them in
      {!stats}. In-flight claims are never evicted. *)

  val export : t -> (string * (report * classification, rejection) result) list
  (** All settled (key, verdict) pairs, sorted by key — the snapshot a
      persistence layer seals. In-flight claims are excluded. *)

  val preload : t -> key:string -> (report * classification, rejection) result -> unit
  (** Insert a verdict recovered from trusted storage. Never overwrites a
      live entry and does not touch hit/miss counters — a reloaded
      cache's stats measure only post-restart traffic. *)

  val verify_classified :
    t ->
    ?tm:Deflection_telemetry.Telemetry.t ->
    ?mode:mode ->
    policies:Deflection_policy.Policy.Set.t ->
    ssa_q:int ->
    serialized:bytes ->
    Objfile.t ->
    (report * classification, rejection) result
  (** Like {!Verifier.verify_mode} (default [mode] is [Descent]), but
      consult the cache first. [serialized] must be the exact bytes [obj]
      was deserialized from. [tm] (default disabled) counts
      ["verifier.cache.hit"] / ["verifier.cache.miss"]; a miss
      additionally records the usual ["verify"] span tree on [tm]. *)

  val verify_classified_outcome :
    t ->
    ?tm:Deflection_telemetry.Telemetry.t ->
    ?mode:mode ->
    policies:Deflection_policy.Policy.Set.t ->
    ssa_q:int ->
    serialized:bytes ->
    Objfile.t ->
    (report * classification, rejection) result * [ `Hit | `Miss ]
  (** {!verify_classified} plus how the verdict was obtained — [`Hit] for
      an answer from (or merged into) a cached/in-flight verdict, [`Miss]
      when this call ran the verifier under its own claim. The audit
      plane records this attribution per admission. *)
end
