module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp
module Verifier = Deflection_verifier.Verifier
module Layout = Deflection_enclave.Layout
module Manifest = Deflection_policy.Manifest
module Attestation = Deflection_attestation.Attestation
module Ratls = Attestation.Ratls
module Frontend = Deflection_compiler.Frontend
module Telemetry = Deflection_telemetry.Telemetry
module Flight_recorder = Deflection_forensics.Flight_recorder
module Profiler = Deflection_forensics.Profiler
module Report = Deflection_forensics.Report
module Chaos = Deflection_chaos.Chaos
module Resilience = Deflection_chaos.Resilience

type error =
  | Compile_error of Frontend.error
  | Attestation_error of { role : Ratls.role; detail : string }
  | Delivery_error of Bootstrap.ecall_error
  | Verifier_rejection of Verifier.rejection
  | Upload_error of Bootstrap.ecall_error
  | Runtime_error of Bootstrap.ecall_error
  | Decrypt_error of string
  | Stage_timeout of { stage : string; detail : string }

let pp_error fmt = function
  | Compile_error e -> Format.fprintf fmt "compile error: %a" Frontend.pp_error e
  | Attestation_error { role; detail } ->
    Format.fprintf fmt "%s attestation: %s" (Ratls.role_label role) detail
  | Delivery_error e -> Bootstrap.pp_ecall_error fmt e
  | Verifier_rejection r -> Format.fprintf fmt "verifier: %a" Verifier.pp_rejection r
  | Upload_error e -> Bootstrap.pp_ecall_error fmt e
  | Runtime_error e -> Bootstrap.pp_ecall_error fmt e
  | Decrypt_error detail -> Format.fprintf fmt "%s" detail
  | Stage_timeout { stage; detail } ->
    Format.fprintf fmt "stage %s timed out: %s" stage detail

let error_to_string e = Format.asprintf "%a" pp_error e

(* Process exit codes, one per failure stage. Documented in the README
   ("Exit codes") and asserted distinct by suite_forensics. *)
let exit_code = function
  | Verifier_rejection _ -> 2
  | Compile_error _ -> 3
  | Attestation_error _ -> 4
  | Runtime_error _ -> 5
  | Delivery_error _ -> 6
  | Upload_error _ -> 7
  | Decrypt_error _ -> 8
  | Stage_timeout _ -> 10

type outcome = {
  verifier_report : Verifier.report;
  rewritten_imms : int;
  exit : Interp.exit_reason;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
  outputs : bytes list;
  telemetry : Telemetry.snapshot;
  crash : Report.crash option;
  retries : Resilience.stage_stats list;
}

let process_exit_code = function
  | Error e -> exit_code e
  | Ok o -> (
    match o.exit with
    | Interp.Exited _ -> 0
    | Interp.Fuel_exhausted -> 11
    | _ -> 9)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let empty_snapshot =
  {
    Telemetry.spans = [];
    counters = [];
    histograms = [];
    events = [];
    dropped_events = 0;
  }

(* Run one protocol stage under the retry budget. The body reports each
   attempt's outcome and stashes the most recent {e structured} error it
   saw; if the budget runs out, that stashed error is returned — a
   persistently-failing stage keeps its documented exit code — and
   [Stage_timeout] is reserved for stages that exhausted the budget
   without ever producing a structured response (e.g. every transmission
   dropped). *)
let staged resilience ~stage body =
  let last_err = ref None in
  let stash e = last_err := Some e in
  match Resilience.run resilience ~stage (fun ~attempt -> body ~attempt ~stash) with
  | Ok v -> Ok v
  | Error (Resilience.Gave_up e) -> Error e
  | Error (Resilience.Timed_out { stage; last; _ }) -> (
    match !last_err with
    | Some e -> Error e
    | None -> Error (Stage_timeout { stage; detail = last }))

let run_protocol ~policies ~ssa_q ?optimize ?layout ?manifest ?interp ~seed ?oram_capacity
    ?verifier_cache ?precompiled ?audit ~verification ~chaos ~resilience ~tm ~recorder
    ~profiler ~source ~inputs () =
  let config =
    {
      Bootstrap.layout = (match layout with Some l -> l | None -> Bootstrap.default_config.Bootstrap.layout);
      manifest = (match manifest with Some m -> m | None -> Manifest.default);
      interp = (match interp with Some i -> i | None -> Interp.default_config);
      policies;
      verification;
      seed;
      oram_capacity;
      verifier_cache;
      audit;
    }
  in
  let platform = Attestation.Platform.create ~seed:(Int64.add seed 1000L) in
  let ias = Attestation.Ias.for_platform platform in
  let enclave = Bootstrap.create ~config ~tm ~platform () in
  let expected_measurement = Bootstrap.measurement enclave in
  let attest ~role prng_salt =
    Telemetry.span tm (match role with
        | Ratls.Code_provider -> "attest.provider"
        | Ratls.Data_owner -> "attest.owner")
    @@ fun () ->
    let prng = Deflection_util.Prng.create (Int64.add seed prng_salt) in
    let quote_site =
      match role with
      | Ratls.Code_provider -> Chaos.Provider_quote
      | Ratls.Data_owner -> Chaos.Owner_quote
    in
    staged resilience ~stage:(Ratls.role_label role ^ "-attest")
    @@ fun ~attempt:_ ~stash ->
    let hello, kp = Ratls.party_begin prng in
    let reply = Bootstrap.accept_party enclave ~role hello in
    (* the quote travels over the untrusted wire: give chaos its shot *)
    let quote_wire =
      Chaos.corrupt_quote chaos ~site:quote_site (Attestation.Quote.serialize reply.Ratls.quote)
    in
    match Attestation.Quote.deserialize quote_wire with
    | Error detail ->
      stash (Attestation_error { role; detail });
      Resilience.Transient detail
    | Ok quote -> (
      let reply = { reply with Ratls.quote } in
      match Ratls.party_complete ~tm kp ~role ~ias ~expected_measurement reply with
      | Ok session -> Resilience.Done session
      | Error detail ->
        stash (Attestation_error { role; detail });
        Resilience.Transient detail)
  in
  (* --- code provider: attest, compile, deliver --- *)
  let* provider_session = attest ~role:Ratls.Code_provider 2000L in
  let* obj =
    (* a gateway compiles each distinct source once and hands the shared
       objfile to every session it fans out *)
    match precompiled with
    | Some obj -> Ok obj
    | None -> (
      match Service.build ~policies ~ssa_q ?optimize ~tm source with
      | Ok obj -> Ok obj
      | Error e -> Error (Compile_error e))
  in
  (* seal exactly once: retransmissions resend the same sealed record, so
     the channel's sequence discipline detects duplicates and replays *)
  let sealed_binary = Service.deliver provider_session obj in
  let* report, rewritten_imms =
    staged resilience ~stage:"deliver" @@ fun ~attempt:_ ~stash ->
    let delivered = Chaos.transport chaos ~site:Chaos.Deliver_binary sealed_binary in
    let rec try_records last = function
      | [] -> (
        match last with
        | Some t -> t
        | None -> Resilience.Transient "binary record dropped in transit")
      | record :: rest -> (
        match Bootstrap.ecall_receive_binary enclave record with
        | Ok v -> Resilience.Done v
        | Error (Bootstrap.Auth_failure _ as e) ->
          stash (Delivery_error e);
          try_records (Some (Resilience.Transient (Bootstrap.ecall_error_to_string e))) rest
        | Error (Bootstrap.Verifier_rejection r) -> Resilience.Fatal (Verifier_rejection r)
        | Error e -> Resilience.Fatal (Delivery_error e))
    in
    try_records None delivered
  in
  (* --- data owner: attest, upload --- *)
  let* owner_session = attest ~role:Ratls.Data_owner 3000L in
  let* () =
    Telemetry.span tm "upload" @@ fun () ->
    let upload_chunk idx chunk =
      let sealed = Client.seal_data owner_session chunk in
      staged resilience ~stage:(Printf.sprintf "upload-%d" idx) @@ fun ~attempt:_ ~stash ->
      let delivered = Chaos.transport chaos ~site:Chaos.Upload_data sealed in
      let rec go ~received last = function
        | [] ->
          if received then Resilience.Done ()
          else (
            match last with
            | Some t -> t
            | None -> Resilience.Transient "data record dropped in transit")
        | record :: rest -> (
          match Bootstrap.ecall_receive_userdata enclave record with
          | Ok () -> go ~received:true last rest
          | Error (Bootstrap.Auth_failure _ as e) ->
            (* harmless for duplicates/replays already consumed; fatal
               for the genuine record only if nothing else gets through *)
            if not received then stash (Upload_error e);
            go ~received
              (Some (Resilience.Transient (Bootstrap.ecall_error_to_string e)))
              rest
          | Error e -> Resilience.Fatal (Upload_error e))
      in
      go ~received:false None delivered
    in
    let rec upload idx = function
      | [] -> Ok ()
      | chunk :: rest ->
        let* () = upload_chunk idx chunk in
        upload (idx + 1) rest
    in
    upload 0 inputs
  in
  (* --- execute and decrypt the results --- *)
  let* stats =
    match Bootstrap.run ~recorder ~profiler ~chaos ~resilience:(Resilience.config resilience) enclave with
    | Ok s -> Ok s
    | Error e -> Error (Runtime_error e)
  in
  let* outputs =
    Telemetry.span tm "decrypt" @@ fun () ->
    let expected = List.length stats.Bootstrap.sealed_outputs in
    if expected = 0 then Ok []
    else begin
      (* opened plaintexts accumulate across attempts: the rx channel's
         sequence cursor skips records opened by an earlier attempt, so
         retransmitting the full set never double-delivers *)
      let opened = ref [] in
      let count = ref 0 in
      staged resilience ~stage:"return-outputs" @@ fun ~attempt:_ ~stash ->
      List.iter
        (fun sealed ->
          if !count < expected then
            List.iter
              (fun record ->
                if !count < expected then
                  match Client.open_record owner_session record with
                  | Ok plain ->
                    opened := plain :: !opened;
                    incr count
                  | Error detail -> stash (Decrypt_error detail))
              (Chaos.transport chaos ~site:Chaos.Return_outputs sealed))
        stats.Bootstrap.sealed_outputs;
      if !count = expected then Resilience.Done (List.rev !opened)
      else Resilience.Transient "output records missing after transport"
    end
  in
  Ok
    {
      verifier_report = report;
      rewritten_imms;
      exit = stats.Bootstrap.exit;
      cycles = stats.Bootstrap.cycles;
      instructions = stats.Bootstrap.instructions;
      aexes = stats.Bootstrap.aexes;
      ocalls = stats.Bootstrap.ocalls;
      leaked_bytes = stats.Bootstrap.leaked_bytes;
      outputs;
      telemetry = empty_snapshot;
      crash = stats.Bootstrap.crash;
      retries = Resilience.stats resilience;
    }

let run ?(policies = Policy.Set.p1_p6) ?(ssa_q = 20) ?optimize ?layout ?manifest ?interp
    ?(seed = 1L) ?oram_capacity ?verifier_cache ?precompiled ?audit
    ?(verification = Verifier.Descent) ?(chaos = Chaos.disabled)
    ?resilience_config ?tm ?(recorder = Flight_recorder.disabled)
    ?(profiler = Profiler.disabled) ~source ~inputs () =
  let tm = match tm with Some tm -> tm | None -> Telemetry.create () in
  let resilience_seed =
    match Chaos.plan chaos with Some p -> p.Chaos.seed | None -> seed
  in
  let resilience = Resilience.create ?config:resilience_config ~seed:resilience_seed () in
  (* the snapshot is taken after the root span closes so the outcome's
     span tree includes "session" itself *)
  let result =
    Telemetry.span tm "session" (fun () ->
        run_protocol ~policies ~ssa_q ?optimize ?layout ?manifest ?interp ~seed ?oram_capacity
          ?verifier_cache ?precompiled ?audit ~verification ~chaos ~resilience ~tm
          ~recorder ~profiler ~source ~inputs ())
  in
  match result with
  | Error _ as e -> e
  | Ok o -> Ok { o with telemetry = Telemetry.snapshot tm }

let compile_only ?policies ?ssa_q src =
  match Frontend.compile ?policies ?ssa_q src with
  | Ok obj -> Ok obj
  | Error e -> Error (Format.asprintf "compile error: %a" Frontend.pp_error e)
