module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp
module Verifier = Deflection_verifier.Verifier
module Layout = Deflection_enclave.Layout
module Manifest = Deflection_policy.Manifest
module Attestation = Deflection_attestation.Attestation
module Ratls = Attestation.Ratls
module Frontend = Deflection_compiler.Frontend
module Telemetry = Deflection_telemetry.Telemetry
module Flight_recorder = Deflection_forensics.Flight_recorder
module Profiler = Deflection_forensics.Profiler
module Report = Deflection_forensics.Report

type error =
  | Compile_error of Frontend.error
  | Attestation_error of { role : Ratls.role; detail : string }
  | Delivery_error of Bootstrap.ecall_error
  | Verifier_rejection of Verifier.rejection
  | Upload_error of Bootstrap.ecall_error
  | Runtime_error of Bootstrap.ecall_error
  | Decrypt_error of string

let pp_error fmt = function
  | Compile_error e -> Format.fprintf fmt "compile error: %a" Frontend.pp_error e
  | Attestation_error { role; detail } ->
    Format.fprintf fmt "%s attestation: %s" (Ratls.role_label role) detail
  | Delivery_error e -> Bootstrap.pp_ecall_error fmt e
  | Verifier_rejection r -> Format.fprintf fmt "verifier: %a" Verifier.pp_rejection r
  | Upload_error e -> Bootstrap.pp_ecall_error fmt e
  | Runtime_error e -> Bootstrap.pp_ecall_error fmt e
  | Decrypt_error detail -> Format.fprintf fmt "%s" detail

let error_to_string e = Format.asprintf "%a" pp_error e

(* Process exit codes, one per failure stage. Documented in the README
   ("Exit codes") and asserted distinct by suite_forensics. *)
let exit_code = function
  | Verifier_rejection _ -> 2
  | Compile_error _ -> 3
  | Attestation_error _ -> 4
  | Runtime_error _ -> 5
  | Delivery_error _ -> 6
  | Upload_error _ -> 7
  | Decrypt_error _ -> 8

type outcome = {
  verifier_report : Verifier.report;
  rewritten_imms : int;
  exit : Interp.exit_reason;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
  outputs : bytes list;
  telemetry : Telemetry.snapshot;
  crash : Report.crash option;
}

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let empty_snapshot =
  {
    Telemetry.spans = [];
    counters = [];
    histograms = [];
    events = [];
    dropped_events = 0;
  }

let run_protocol ~policies ~ssa_q ?optimize ?layout ?manifest ?interp ~seed ?oram_capacity ~tm
    ~recorder ~profiler ~source ~inputs () =
  let config =
    {
      Bootstrap.layout = (match layout with Some l -> l | None -> Bootstrap.default_config.Bootstrap.layout);
      manifest = (match manifest with Some m -> m | None -> Manifest.default);
      interp = (match interp with Some i -> i | None -> Interp.default_config);
      policies;
      seed;
      oram_capacity;
    }
  in
  let platform = Attestation.Platform.create ~seed:(Int64.add seed 1000L) in
  let ias = Attestation.Ias.for_platform platform in
  let enclave = Bootstrap.create ~config ~tm ~platform () in
  let expected_measurement = Bootstrap.measurement enclave in
  let attest ~role prng_salt =
    Telemetry.span tm (match role with
        | Ratls.Code_provider -> "attest.provider"
        | Ratls.Data_owner -> "attest.owner")
    @@ fun () ->
    let prng = Deflection_util.Prng.create (Int64.add seed prng_salt) in
    let hello, kp = Ratls.party_begin prng in
    let reply = Bootstrap.accept_party enclave ~role hello in
    match Ratls.party_complete ~tm kp ~role ~ias ~expected_measurement reply with
    | Ok session -> Ok session
    | Error detail -> Error (Attestation_error { role; detail })
  in
  (* --- code provider: attest, compile, deliver --- *)
  let* provider_session = attest ~role:Ratls.Code_provider 2000L in
  let* obj =
    match Service.build ~policies ~ssa_q ?optimize ~tm source with
    | Ok obj -> Ok obj
    | Error e -> Error (Compile_error e)
  in
  let sealed_binary = Service.deliver provider_session obj in
  let* report, rewritten_imms =
    match Bootstrap.ecall_receive_binary enclave sealed_binary with
    | Ok v -> Ok v
    | Error (Bootstrap.Verifier_rejection r) -> Error (Verifier_rejection r)
    | Error e -> Error (Delivery_error e)
  in
  (* --- data owner: attest, upload --- *)
  let* owner_session = attest ~role:Ratls.Data_owner 3000L in
  let* () =
    Telemetry.span tm "upload" @@ fun () ->
    List.fold_left
      (fun acc chunk ->
        let* () = acc in
        match Bootstrap.ecall_receive_userdata enclave (Client.seal_data owner_session chunk) with
        | Ok () -> Ok ()
        | Error e -> Error (Upload_error e))
      (Ok ()) inputs
  in
  (* --- execute and decrypt the results --- *)
  let* stats =
    match Bootstrap.run ~recorder ~profiler enclave with
    | Ok s -> Ok s
    | Error e -> Error (Runtime_error e)
  in
  let* outputs =
    Telemetry.span tm "decrypt" @@ fun () ->
    match Client.open_outputs owner_session stats.Bootstrap.sealed_outputs with
    | Ok outs -> Ok outs
    | Error detail -> Error (Decrypt_error detail)
  in
  Ok
    {
      verifier_report = report;
      rewritten_imms;
      exit = stats.Bootstrap.exit;
      cycles = stats.Bootstrap.cycles;
      instructions = stats.Bootstrap.instructions;
      aexes = stats.Bootstrap.aexes;
      ocalls = stats.Bootstrap.ocalls;
      leaked_bytes = stats.Bootstrap.leaked_bytes;
      outputs;
      telemetry = empty_snapshot;
      crash = stats.Bootstrap.crash;
    }

let run ?(policies = Policy.Set.p1_p6) ?(ssa_q = 20) ?optimize ?layout ?manifest ?interp
    ?(seed = 1L) ?oram_capacity ?tm ?(recorder = Flight_recorder.disabled)
    ?(profiler = Profiler.disabled) ~source ~inputs () =
  let tm = match tm with Some tm -> tm | None -> Telemetry.create () in
  (* the snapshot is taken after the root span closes so the outcome's
     span tree includes "session" itself *)
  let result =
    Telemetry.span tm "session" (fun () ->
        run_protocol ~policies ~ssa_q ?optimize ?layout ?manifest ?interp ~seed ?oram_capacity
          ~tm ~recorder ~profiler ~source ~inputs ())
  in
  match result with
  | Error _ as e -> e
  | Ok o -> Ok { o with telemetry = Telemetry.snapshot tm }

let compile_only ?policies ?ssa_q src =
  match Frontend.compile ?policies ?ssa_q src with
  | Ok obj -> Ok obj
  | Error e -> Error (Format.asprintf "compile error: %a" Frontend.pp_error e)
