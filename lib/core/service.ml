module Frontend = Deflection_compiler.Frontend
module Objfile = Deflection_isa.Objfile
module Policy = Deflection_policy.Policy
module Ratls = Deflection_attestation.Attestation.Ratls
module Channel = Deflection_crypto.Channel

let build ?policies ?ssa_q ?optimize ?tm src = Frontend.compile ?policies ?ssa_q ?optimize ?tm src

let deliver (session : Ratls.session) obj =
  Channel.seal session.Ratls.tx (Objfile.serialize obj)
