(** The code provider: builds the policy-compliant target binary with the
    untrusted code generator and delivers it, sealed, over its RA-TLS
    session. The provider's source never leaves its side in the clear. *)

module Frontend = Deflection_compiler.Frontend
module Objfile = Deflection_isa.Objfile
module Policy = Deflection_policy.Policy
module Ratls = Deflection_attestation.Attestation.Ratls

val build :
  ?policies:Policy.Set.t ->
  ?ssa_q:int ->
  ?optimize:bool ->
  ?tm:Deflection_telemetry.Telemetry.t ->
  string ->
  (Objfile.t, Frontend.error) result
(** Compile and instrument MiniC source (defaults: P1-P6, q=20,
    optimization on). [tm] is forwarded to {!Frontend.compile}. *)

val deliver : Ratls.session -> Objfile.t -> bytes
(** Seal the serialized binary for the bootstrap enclave. *)
