(** The bootstrap enclave — the paper's trusted code consumer.

    Its public, attestable code consists of the loader, the verifier, the
    imm rewriter and the OCall wrappers; its measurement covers that code
    and the enclave geometry, but deliberately {e not} the target binary,
    which arrives later through an ECall ([ecall_receive_binary]) over the
    code provider's secure channel.

    P0 enforcement lives here: only the manifest's OCalls are reachable;
    [send]/[print] output is encrypted to the data owner's session key and
    padded to a fixed record size; an optional entropy budget caps the
    total plaintext bits the service may emit. *)

module Layout = Deflection_enclave.Layout
module Memory = Deflection_enclave.Memory
module Manifest = Deflection_policy.Manifest
module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp
module Verifier = Deflection_verifier.Verifier
module Attestation = Deflection_attestation.Attestation
module Flight_recorder = Deflection_forensics.Flight_recorder
module Profiler = Deflection_forensics.Profiler
module Report = Deflection_forensics.Report
module Audit = Deflection_audit.Audit

type config = {
  layout : Layout.config;
  manifest : Manifest.t;
  interp : Interp.config;
  policies : Policy.Set.t;  (** the policy set this enclave enforces *)
  verification : Verifier.mode;
      (** how {!ecall_receive_binary} verifies deliveries — recursive
          descent ([Descent], the default), the witness-checked linear
          pass ([Witnessed]), or witnessed with a descent fallback on
          witness-pass rejections ([Witnessed_fallback]). Part of the
          measured consumer identity and of the verdict-cache key. *)
  seed : int64;
  oram_capacity : int option;
      (** when set (and the manifest includes the [oram_*] OCalls, see
          {!Manifest.with_oram}), the enclave offers oblivious storage in
          untrusted host memory through a Path ORAM (paper Section VII) *)
  verifier_cache : Verifier.Cache.t option;
      (** when set, {!ecall_receive_binary} consults the measurement-keyed
          verdict cache before running its own verifier pass — the
          verify-once/admit-many fast path a gateway shares across the
          enclave instances it drives. [None] (the default) verifies every
          delivery from scratch. *)
  audit : Audit.sink option;
      (** when set, every admission decision {!ecall_receive_binary}
          renders — acceptance or rejection, from the cache or from a
          fresh verifier pass — appends one record to the shared
          hash-chained audit log, attributed to the sink's worker lane
          and counted on [tm] as ["audit.records"]. *)
}

val default_config : config
(** Small layout, P1-P6, calm platform (no AEX injection). *)

type t

(** Structured failure modes of the consumer's ECalls — the protocol layer
    maps these into {!Session.error} without string matching. *)
type ecall_error =
  | No_provider_session
  | No_owner_session
  | Auth_failure of string  (** which record ("binary" / "data") *)
  | Malformed_binary of string
  | Loader_error of Deflection_loader.Loader.error
  | Verifier_rejection of Verifier.rejection
  | Rewrite_error of Deflection_loader.Loader.error
  | Not_verified

val pp_ecall_error : Format.formatter -> ecall_error -> unit
val ecall_error_to_string : ecall_error -> string

val create :
  ?config:config ->
  ?tm:Deflection_telemetry.Telemetry.t ->
  platform:Attestation.Platform.t ->
  unit ->
  t
(** [tm] (default disabled) receives the enclave-side spans ("deliver"
    with load/verify/rewrite children, "execute"), the channel byte
    counters and the interpreter statistics. *)

val config : t -> config
val measurement : t -> bytes
(** The MRENCLAVE a remote party must expect. *)

val consumer_code : config -> bytes
(** The canonical bytes of the public consumer build measured into the
    enclave (a stand-in for the real loader/verifier binary; it commits to
    the consumer version, the manifest and the enforced policy set). *)

val accept_party :
  t -> role:Attestation.Ratls.role -> Attestation.Ratls.hello -> Attestation.Ratls.reply
(** RA-TLS handshake with the code provider or the data owner; the
    resulting session is retained inside the enclave. *)

val ecall_receive_binary : t -> bytes -> (Verifier.report * int, ecall_error) result
(** Decrypt the sealed target binary with the provider session, parse it,
    dynamically load and relocate it, run the verifier, and (only on
    acceptance) rewrite the annotation immediates. Returns the verifier
    report and the number of rewritten immediates. *)

val ecall_receive_userdata : t -> bytes -> (unit, ecall_error) result
(** Decrypt a sealed data record with the owner session and queue it for
    the service's [recv] OCall. *)

type run_stats = {
  exit : Interp.exit_reason;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
  sealed_outputs : bytes list;  (** records encrypted to the data owner *)
  crash : Report.crash option;
      (** present iff [exit] is abnormal: the frozen forensic state —
          violated policy, faulting instruction + disassembly window,
          register file, memory map, flight-recorder tail *)
}

val run :
  ?recorder:Flight_recorder.t ->
  ?profiler:Profiler.t ->
  ?chaos:Deflection_chaos.Chaos.t ->
  ?resilience:Deflection_chaos.Resilience.config ->
  t ->
  (run_stats, ecall_error) result
(** Transfer execution to the verified target program. [recorder]
    (default disabled) rides the interpreter's stepping loop and is frozen
    into [crash] on abnormal exits; [profiler] (default disabled) samples
    pcs and is fed the loader's function symbol map before entry.

    [chaos] (default {!Deflection_chaos.Chaos.disabled}) injects the
    execution-stage faults of a chaos plan: pre-run bit flips in the
    non-measured data/stack pages, AEX-interval and watchdog-fuel
    overrides, and host-side OCall failures. The OCall wrapper retries a
    failing host call up to [resilience].[max_attempts] times (charging
    virtual cycles per re-issue); a failure outlasting the budget halts
    the program with [Interp.Ocall_failed]. *)

val memory : t -> Memory.t

val oram_trace : t -> int list option
(** The bucket-access trace the untrusted host observed from the ORAM, if
    one is configured — the obliviousness tests inspect it. *)
