module Chaos = Deflection_chaos.Chaos
module Oracle = Deflection_chaos.Oracle
module Resilience = Deflection_chaos.Resilience
module Json = Deflection_telemetry.Json
module Sha256 = Deflection_crypto.Sha256
module Hex = Deflection_util.Hex
module Interp = Deflection_runtime.Interp

(* Two fixed workloads: one compliant service (the reference accepts and
   answers), one that trips a P1 store guard at runtime (the reference
   ends in a policy abort, exit 9) — so the campaign exercises both
   directions of the fail-closed argument: faults must not corrupt an
   accepting run unnoticed, and must not flip a rejecting run into an
   acceptance. *)
let workloads =
  [
    ( "sum-service",
      {|
int buf[16];
int main() {
  int n = recv(buf, 16);
  buf[15] = n;
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + buf[i]; }
  print_int(s);
  send(buf, n);
  return 0;
}
|},
      [ Bytes.of_string "\x01\x02\x03\x04" ] );
    ( "oob-abort",
      {|
int buf[4];
int main() {
  int n = recv(buf, 4);
  buf[n * 30000] = 7;
  send(buf, 1);
  return 0;
}
|},
      [ Bytes.of_string "\x05" ] );
  ]

let workload_names = List.map (fun (n, _, _) -> n) workloads

(* one fixed session seed for reference and subject: the only difference
   between the two runs of a case is the fault plan *)
let session_seed = 42L

type case = {
  seed : int64;
  workload : string;
  plan : Chaos.plan;
  reference : Oracle.observation;
  subject : Oracle.observation;
  verdict : Oracle.verdict;
  fired : (string * int) list;
  retries : Resilience.stage_stats list;
}

type report = { base_seed : int64; cases : case list }

let digest_outputs outputs =
  let ctx = Sha256.init () in
  List.iter
    (fun o ->
      Sha256.update_string ctx (string_of_int (Bytes.length o) ^ ":");
      Sha256.update ctx o)
    outputs;
  Hex.encode (Sha256.finalize ctx)

let observe result =
  let exit_code = Session.process_exit_code result in
  match result with
  | Ok (o : Session.outcome) ->
    {
      Oracle.exit_code;
      accepted = true;
      leaked_bytes = o.Session.leaked_bytes;
      outputs_digest = digest_outputs o.Session.outputs;
    }
  | Error _ -> { Oracle.exit_code; accepted = false; leaked_bytes = 0; outputs_digest = "" }

let run_workload ?chaos name =
  let _, source, inputs =
    List.find (fun (n, _, _) -> String.equal n name) workloads
  in
  Session.run ?chaos ~seed:session_seed ~source ~inputs ()

(* references are deterministic per workload; campaigns compute each once *)
let reference_for =
  let cache = Hashtbl.create 4 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some obs -> obs
    | None ->
      let obs = observe (run_workload name) in
      Hashtbl.add cache name obs;
      obs

let pick_workload ~seed =
  let rng = Deflection_util.Prng.create (Deflection_util.Prng.derive seed ~label:"chaos-workload") in
  (* three compliant runs for every rejecting one *)
  if Deflection_util.Prng.int rng 4 = 3 then List.nth workload_names 1
  else List.hd workload_names

let divergence_allowed plan =
  List.exists (function Chaos.Mem_flip _ -> true | _ -> false) plan.Chaos.faults

let run_case ~seed =
  let plan = Chaos.generate ~seed in
  let workload = pick_workload ~seed in
  let reference = reference_for workload in
  let engine = Chaos.of_plan plan in
  let result = run_workload ~chaos:engine workload in
  let subject = observe result in
  let verdict =
    Oracle.check ~reference ~subject ~divergence_allowed:(divergence_allowed plan)
  in
  let retries =
    match result with Ok o -> o.Session.retries | Error _ -> []
  in
  { seed; workload; plan; reference; subject; verdict; fired = Chaos.fired engine; retries }

let run ?(base_seed = 1L) ~seeds () =
  {
    base_seed;
    cases = List.init seeds (fun i -> run_case ~seed:(Int64.add base_seed (Int64.of_int i)));
  }

let violations report =
  List.fold_left (fun acc c -> acc + List.length c.verdict.Oracle.violations) 0 report.cases

let histogram report =
  List.map
    (fun site ->
      let key = Chaos.site_label site in
      ( key,
        List.fold_left
          (fun acc c -> acc + (try List.assoc key c.fired with Not_found -> 0))
          0 report.cases ))
    Chaos.all_sites

let stage_stats_to_json (s : Resilience.stage_stats) =
  Json.Obj
    [
      ("stage", Json.Str s.Resilience.stage);
      ("attempts", Json.Int s.Resilience.attempts);
      ("retries", Json.Int s.Resilience.retries);
      ("backoff_ms", Json.Int s.Resilience.backoff_ms);
      ("timed_out", Json.Bool s.Resilience.timed_out);
    ]

let case_to_json c =
  Json.Obj
    [
      ("seed", Json.Str (Int64.to_string c.seed));
      ("workload", Json.Str c.workload);
      ("plan", Chaos.plan_to_json c.plan);
      ("reference", Oracle.observation_to_json c.reference);
      ("subject", Oracle.observation_to_json c.subject);
      ("pass", Json.Bool (Oracle.ok c.verdict));
      ("violations", Json.List (List.map (fun v -> Json.Str v) c.verdict.Oracle.violations));
      ("fired", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) c.fired));
      ("retries", Json.List (List.map stage_stats_to_json c.retries));
    ]

let report_to_json r =
  let failed =
    List.length (List.filter (fun c -> not (Oracle.ok c.verdict)) r.cases)
  in
  let total_retries =
    List.fold_left
      (fun acc c ->
        acc + List.fold_left (fun a (s : Resilience.stage_stats) -> a + s.Resilience.retries) 0 c.retries)
      0 r.cases
  in
  let total_backoff =
    List.fold_left
      (fun acc c ->
        acc
        + List.fold_left (fun a (s : Resilience.stage_stats) -> a + s.Resilience.backoff_ms) 0 c.retries)
      0 r.cases
  in
  Json.Obj
    [
      ("schema", Json.Str "deflection-chaos/1");
      ("base_seed", Json.Str (Int64.to_string r.base_seed));
      ("seeds", Json.Int (List.length r.cases));
      ("passed", Json.Int (List.length r.cases - failed));
      ("failed", Json.Int failed);
      ("violations", Json.Int (violations r));
      ("fault_histogram", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) (histogram r)));
      ( "retry",
        Json.Obj
          [
            ("total_retries", Json.Int total_retries);
            ("total_backoff_ms", Json.Int total_backoff);
          ] );
      ("cases", Json.List (List.map case_to_json r.cases));
    ]
