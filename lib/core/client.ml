module Ratls = Deflection_attestation.Attestation.Ratls
module Channel = Deflection_crypto.Channel

let seal_data (session : Ratls.session) data = Channel.seal session.Ratls.tx data

let open_record (session : Ratls.session) record =
  try Ok (Channel.open_padded session.Ratls.rx record)
  with Channel.Auth_failure -> Error "output record failed authentication"

let open_outputs (session : Ratls.session) records =
  try
    Ok (List.map (fun r -> Channel.open_padded session.Ratls.rx r) records)
  with Channel.Auth_failure -> Error "output record failed authentication"
