(** The data owner: attests the bootstrap enclave, uploads sensitive data
    over its session, and decrypts the service's sealed outputs. *)

module Ratls = Deflection_attestation.Attestation.Ratls

val seal_data : Ratls.session -> bytes -> bytes

val open_record : Ratls.session -> bytes -> (bytes, string) result
(** Decrypt (and unpad) one output record. A failure (corrupted,
    replayed, or out-of-order record) does not advance the channel's
    sequence cursor, so the caller can skip it and retry with a
    retransmission — the primitive the session's resilient output path
    is built on. *)

val open_outputs : Ratls.session -> bytes list -> (bytes list, string) result
(** Decrypt (and unpad) the enclave's output records, in order. *)
