(** Chaos campaigns: run generated fault plans end-to-end through the
    full Figure-3 session and hold the outcomes against the fail-closed
    oracle.

    Each case derives a {!Chaos.plan} from its seed, picks a workload
    (three compliant runs for every policy-violating one), runs the
    protocol once without faults (the reference — cached per workload;
    everything is deterministic) and once with the plan injected, and
    asks {!Oracle.check} for violations. The whole campaign is a pure
    function of [base_seed] and [seeds]: re-running any case by seed
    reproduces its report entry byte-for-byte, which is what makes a
    failing case a bug report rather than an anecdote.

    The report serializes under the [deflection-chaos/1] schema
    (validated by [json_check --chaos]). *)

module Chaos = Deflection_chaos.Chaos
module Oracle = Deflection_chaos.Oracle
module Resilience = Deflection_chaos.Resilience

type case = {
  seed : int64;
  workload : string;
  plan : Chaos.plan;
  reference : Oracle.observation;  (** the fault-free run *)
  subject : Oracle.observation;  (** the run with the plan injected *)
  verdict : Oracle.verdict;
  fired : (string * int) list;  (** per-site injected-fault histogram *)
  retries : Resilience.stage_stats list;
}

type report = { base_seed : int64; cases : case list }

val run_case : seed:int64 -> case
(** Deterministic in [seed]. *)

val run : ?base_seed:int64 -> seeds:int -> unit -> report
(** Case [i] uses seed [base_seed + i]. *)

val violations : report -> int
(** Total fail-closed violations across all cases — the campaign's pass
    criterion is zero. *)

val histogram : report -> (string * int) list
(** Injected faults per site, summed over the campaign, in
    {!Chaos.all_sites} order. *)

val case_to_json : case -> Deflection_telemetry.Json.t
val report_to_json : report -> Deflection_telemetry.Json.t
