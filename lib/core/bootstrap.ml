module Layout = Deflection_enclave.Layout
module Memory = Deflection_enclave.Memory
module Measurement = Deflection_enclave.Measurement
module Manifest = Deflection_policy.Manifest
module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp
module Loader = Deflection_loader.Loader
module Verifier = Deflection_verifier.Verifier
module Objfile = Deflection_isa.Objfile
module Isa = Deflection_isa.Isa
module Attestation = Deflection_attestation.Attestation
module Channel = Deflection_crypto.Channel
module Ratls = Attestation.Ratls
module Telemetry = Deflection_telemetry.Telemetry
module Flight_recorder = Deflection_forensics.Flight_recorder
module Profiler = Deflection_forensics.Profiler
module Report = Deflection_forensics.Report
module Chaos = Deflection_chaos.Chaos
module Resilience = Deflection_chaos.Resilience
module Audit = Deflection_audit.Audit
module Sha256 = Deflection_crypto.Sha256

type config = {
  layout : Layout.config;
  manifest : Manifest.t;
  interp : Interp.config;
  policies : Policy.Set.t;
  verification : Verifier.mode;
      (* how ecall_receive_binary verifies deliveries: classic recursive
         descent, the witness-checked linear pass, or witnessed with a
         descent fallback on witness-pass rejections *)
  seed : int64;
  oram_capacity : int option;
      (* when set, the manifest's oram_read/oram_write OCalls are backed
         by a Path ORAM over untrusted host memory (paper Section VII) *)
  verifier_cache : Verifier.Cache.t option;
      (* when set, ecall_receive_binary consults the measurement-keyed
         verdict cache before running the verifier pass (verify-once /
         admit-many, shared across enclave instances of one gateway) *)
  audit : Audit.sink option;
      (* when set, every admission decision ecall_receive_binary renders
         — acceptance or rejection, cached or not — appends one record
         to the shared hash-chained audit log under this worker lane *)
}

let default_config =
  {
    layout = Layout.small_config;
    manifest = Manifest.default;
    interp = Interp.default_config;
    policies = Policy.Set.p1_p6;
    verification = Verifier.Descent;
    seed = 1L;
    oram_capacity = None;
    verifier_cache = None;
    audit = None;
  }

let consumer_code (config : config) =
  let b = Buffer.create 256 in
  Buffer.add_string b "DEFLECTION consumer v1 (loader+verifier+imm-rewriter+ocall-wrappers);";
  Buffer.add_string b (Printf.sprintf "policies=%s;" (Policy.Set.label config.policies));
  (* the verification mode is part of the measured consumer identity: a
     remote party attesting the enclave knows which admission discipline
     will judge its binary *)
  Buffer.add_string b
    (Printf.sprintf "verification=%s;" (Verifier.mode_label config.verification));
  Buffer.add_string b (Printf.sprintf "ssa_q=%d;aex_threshold=%d;" config.manifest.Manifest.ssa_q
       config.manifest.Manifest.aex_threshold);
  List.iter
    (fun (o : Manifest.ocall_spec) ->
      Buffer.add_string b
        (Printf.sprintf "ocall%d=%s,enc=%b,pad=%s;" o.Manifest.index o.Manifest.name
           o.Manifest.encrypt_output
           (match o.Manifest.pad_output_to with Some n -> string_of_int n | None -> "none")))
    config.manifest.Manifest.allowed_ocalls;
  Buffer.to_bytes b

type ecall_error =
  | No_provider_session
  | No_owner_session
  | Auth_failure of string  (* which record failed authentication *)
  | Malformed_binary of string
  | Loader_error of Loader.error
  | Verifier_rejection of Verifier.rejection
  | Rewrite_error of Loader.error
  | Not_verified

let pp_ecall_error fmt = function
  | No_provider_session -> Format.fprintf fmt "no code-provider session established"
  | No_owner_session ->
    Format.fprintf fmt "no data-owner session established (output cannot be protected)"
  | Auth_failure what -> Format.fprintf fmt "%s record failed authentication" what
  | Malformed_binary e -> Format.fprintf fmt "malformed target binary: %s" e
  | Loader_error e -> Format.fprintf fmt "loader: %a" Loader.pp_error e
  | Verifier_rejection r -> Format.fprintf fmt "verifier: %a" Verifier.pp_rejection r
  | Rewrite_error e -> Format.fprintf fmt "imm rewriter: %a" Loader.pp_error e
  | Not_verified -> Format.fprintf fmt "no verified target binary loaded"

let ecall_error_to_string e = Format.asprintf "%a" pp_ecall_error e

type t = {
  config : config;
  tm : Telemetry.t;
  layout : Layout.t;
  mem : Memory.t;
  platform : Attestation.Platform.t;
  prng : Deflection_util.Prng.t;
  measurement : bytes;
  mutable provider_session : Ratls.session option;
  mutable owner_session : Ratls.session option;
  mutable loaded : Loader.loaded option;
  mutable verified : bool;
  mutable block_leaders : int list;
      (** verified basic-block leader offsets from the accepting verdict;
          handed to the interpreter's trace tier at run time *)
  mutable input_queue : bytes list;  (** plaintext chunks, FIFO *)
  mutable bits_sent : int;
  oram : Deflection_oram.Path_oram.t option;
}

let create ?(config = default_config) ?(tm = Telemetry.disabled) ~platform () =
  let layout = Layout.make config.layout in
  let mem = Memory.create layout in
  let consumer = consumer_code config in
  (* place the consumer code in its region: part of the initial, measured
     enclave state *)
  let consumer_cap = layout.Layout.consumer_hi - layout.Layout.consumer_lo in
  let consumer_placed =
    if Bytes.length consumer > consumer_cap then Bytes.sub consumer 0 consumer_cap else consumer
  in
  (* the consumer pages are RX; write through the privileged interface *)
  Memory.priv_write_bytes mem layout.Layout.consumer_lo consumer_placed;
  {
    config;
    tm;
    layout;
    mem;
    platform;
    prng = Deflection_util.Prng.create config.seed;
    measurement = Measurement.measure layout ~consumer_code:consumer;
    provider_session = None;
    owner_session = None;
    loaded = None;
    verified = false;
    block_leaders = [];
    input_queue = [];
    bits_sent = 0;
    oram =
      Option.map
        (fun capacity ->
          Deflection_oram.Path_oram.create ~seed:(Int64.add config.seed 4242L) ~capacity ())
        config.oram_capacity;
  }

let config t = t.config
let measurement t = t.measurement
let memory t = t.mem
let oram_trace t = Option.map Deflection_oram.Path_oram.trace t.oram

let accept_party t ~role hello =
  let reply, session =
    Ratls.enclave_accept ~tm:t.tm t.prng ~platform:t.platform ~measurement:t.measurement ~role
      hello
  in
  (match role with
  | Ratls.Code_provider -> t.provider_session <- Some session
  | Ratls.Data_owner -> t.owner_session <- Some session);
  reply

let ecall_receive_binary t sealed =
  Telemetry.span t.tm "deliver" @@ fun () ->
  match t.provider_session with
  | None -> Error No_provider_session
  | Some session ->
    (match Channel.open_ session.Ratls.rx sealed with
    | exception Channel.Auth_failure -> Error (Auth_failure "binary")
    | plaintext ->
      Telemetry.count t.tm "channel.bytes_unsealed" (Bytes.length plaintext);
      (match Objfile.deserialize plaintext with
      | Error e -> Error (Malformed_binary e)
      | Ok obj ->
        (match
           Loader.load ~tm:t.tm t.mem ~aex_threshold:t.config.manifest.Manifest.aex_threshold
             obj
         with
        | Error e -> Error (Loader_error e)
        | Ok loaded ->
          let verdict, cache_outcome =
            match t.config.verifier_cache with
            | Some cache ->
              let v, o =
                Verifier.Cache.verify_classified_outcome cache ~tm:t.tm
                  ~mode:t.config.verification ~policies:t.config.policies
                  ~ssa_q:obj.Objfile.ssa_q ~serialized:plaintext obj
              in
              (v, match o with `Hit -> Audit.Hit | `Miss -> Audit.Miss)
            | None ->
              ( Verifier.verify_mode ~tm:t.tm ~mode:t.config.verification
                  ~policies:t.config.policies ~ssa_q:obj.Objfile.ssa_q obj,
                Audit.Uncached )
          in
          (* the admission decision is now rendered: evidence it before
             acting on it, acceptance and rejection alike *)
          (match t.config.audit with
          | None -> ()
          | Some sink ->
            let av =
              match verdict with
              | Ok (report, _) -> Audit.Accepted report
              | Error r -> Audit.Rejected r
            in
            ignore
              (Audit.Log.append sink.Audit.log
                 ~measurement:(Sha256.digest plaintext)
                 ~policies:t.config.policies ~mode:t.config.verification
                 ~ssa_q:obj.Objfile.ssa_q ~verdict:av ~cache:cache_outcome
                 ~lane:sink.Audit.lane);
            Telemetry.count t.tm "audit.records" 1);
          (match verdict with
          | Error r -> Error (Verifier_rejection r)
          | Ok (report, classification) ->
            (match Loader.rewrite_imms ~tm:t.tm t.mem loaded ~policies:t.config.policies with
            | Error e -> Error (Rewrite_error e)
            | Ok rewritten ->
              t.loaded <- Some loaded;
              t.verified <- true;
              (* may be empty for cache-recovered verdicts: the trace
                 tier then falls back to discovering boundaries itself *)
              t.block_leaders <- Verifier.classification_leaders classification;
              Ok (report, rewritten))))))

let ecall_receive_userdata t sealed =
  match t.owner_session with
  | None -> Error No_owner_session
  | Some session ->
    (match Channel.open_ session.Ratls.rx sealed with
    | exception Channel.Auth_failure -> Error (Auth_failure "data")
    | plaintext ->
      Telemetry.count t.tm "channel.bytes_unsealed" (Bytes.length plaintext);
      t.input_queue <- t.input_queue @ [ plaintext ];
      Ok ())

type run_stats = {
  exit : Interp.exit_reason;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
  sealed_outputs : bytes list;
  crash : Report.crash option;
}

(* Freeze the interpreter state into a crash report. Only called on
   abnormal exits, so the disassembly/decode cost never taxes a clean
   run. *)
let build_crash t (loaded : Loader.loaded) itp exit =
  let kind, detail, policy, abort_stub =
    match (exit : Interp.exit_reason) with
    | Interp.Exited _ -> ("exited", Interp.exit_reason_to_string exit, None, None)
    | Interp.Policy_abort r ->
      ( "policy-abort",
        Interp.exit_reason_to_string exit,
        Some (Report.policy_of_abort ~enforced:t.config.policies r),
        Some (Deflection_annot.Annot.abort_symbol r) )
    | Interp.Mem_fault _ -> ("mem-fault", Interp.exit_reason_to_string exit, None, None)
    | Interp.Invalid_instruction _ ->
      ("bad-decode", Interp.exit_reason_to_string exit, None, None)
    | Interp.Div_by_zero _ -> ("div-by-zero", Interp.exit_reason_to_string exit, None, None)
    | Interp.Div_overflow _ ->
      ("div-overflow", Interp.exit_reason_to_string exit, None, None)
    | Interp.Ocall_denied _ ->
      ("ocall-denied", Interp.exit_reason_to_string exit, Some Policy.P0, None)
    | Interp.Ocall_failed _ ->
      ("ocall-failed", Interp.exit_reason_to_string exit, None, None)
    | Interp.Limit_exceeded ->
      ("limit-exceeded", Interp.exit_reason_to_string exit, None, None)
    | Interp.Fuel_exhausted ->
      ("fuel-exhausted", Interp.exit_reason_to_string exit, None, None)
  in
  let pc = Interp.rip itp in
  let text = Memory.priv_read_bytes t.mem loaded.Loader.text_base loaded.Loader.text_len in
  let window = Report.disasm_window ~code:text ~base:loaded.Loader.text_base ~pc () in
  let instr_bytes =
    match List.find_opt (fun l -> l.Report.w_fault) window with
    | Some l -> l.Report.w_bytes
    | None -> ""
  in
  let regions =
    List.filter_map
      (fun (name, lo, hi) ->
        if lo >= hi then None
        else
          Some
            {
              Report.r_name = name;
              r_lo = lo;
              r_hi = hi;
              r_perm = Format.asprintf "%a" Memory.pp_perm (Memory.page_perm t.mem lo);
            })
      (Layout.regions t.layout)
  in
  let recorder = Interp.recorder itp in
  {
    Report.kind;
    detail;
    policy;
    abort_stub;
    pc;
    instr_bytes;
    window;
    regs = Interp.register_file itp;
    regions;
    events = Flight_recorder.entries recorder;
    events_dropped = Flight_recorder.dropped recorder;
    cycles = Interp.cycles itp;
    instructions = Interp.instructions itp;
    aexes = Interp.aex_count itp;
    ocalls = Interp.ocall_count itp;
    leaked_bytes = Memory.leaked_bytes t.mem;
  }

(* OCall wrappers: P0. Buffers handed out by the target are validated to
   lie inside the data/stack regions before the wrapper touches them. *)
let buffer_ok t addr nelems =
  let lo = t.layout.Layout.data_lo and hi = t.layout.Layout.stack_hi in
  nelems >= 0 && nelems <= 1 lsl 20 && addr >= lo && addr + (8 * nelems) <= hi

(* per-byte cycle surcharge for record encryption done by the wrapper *)
let crypto_cycles_per_byte = 4

let run ?(recorder = Flight_recorder.disabled) ?(profiler = Profiler.disabled)
    ?(chaos = Chaos.disabled) ?(resilience = Resilience.default_config) t =
  if not t.verified then Error Not_verified
  else begin
    match (t.loaded, t.owner_session) with
    | None, _ -> Error Not_verified
    | _, None -> Error No_owner_session
    | Some loaded, Some owner ->
      Telemetry.span t.tm "execute" @@ fun () ->
      let outputs = ref [] in
      let record_hist = Telemetry.histogram t.tm "channel.record_bytes" in
      let seal_record plaintext pad_to itp =
        Interp.add_cycles itp (crypto_cycles_per_byte * (Bytes.length plaintext + pad_to));
        let sealed = Channel.seal_padded owner.Ratls.tx ~pad_to plaintext in
        Telemetry.count t.tm "channel.bytes_sealed" (Bytes.length sealed);
        if Telemetry.enabled t.tm then Telemetry.observe record_hist (Bytes.length sealed);
        sealed
      in
      let entropy_exceeded spec bits =
        match spec.Manifest.max_output_bits with
        | Some budget -> t.bits_sent + bits > budget
        | None -> false
      in
      let ocall index itp =
        match Manifest.find_ocall t.config.manifest index with
        | None -> Interp.Halt (Interp.Ocall_denied index)
        | Some spec ->
          let rdi = Int64.to_int (Interp.read_reg itp Isa.RDI) in
          let rsi = Int64.to_int (Interp.read_reg itp Isa.RSI) in
          (match spec.Manifest.name with
          | "send" ->
            if not (buffer_ok t rdi rsi) then Interp.Halt (Interp.Ocall_denied index)
            else if entropy_exceeded spec (8 * rsi) then Interp.Halt (Interp.Ocall_denied index)
            else begin
              let plain = Bytes.create rsi in
              for i = 0 to rsi - 1 do
                let v = Memory.priv_read_u64 t.mem (rdi + (8 * i)) in
                Bytes.set plain i (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
              done;
              t.bits_sent <- t.bits_sent + (8 * rsi);
              let pad = match spec.Manifest.pad_output_to with Some p -> p | None -> rsi in
              outputs := seal_record plain (max pad rsi) itp :: !outputs;
              Interp.write_reg itp Isa.RAX (Int64.of_int rsi);
              Interp.Continue
            end
          | "recv" ->
            if not (buffer_ok t rdi rsi) then Interp.Halt (Interp.Ocall_denied index)
            else begin
              match t.input_queue with
              | [] ->
                Interp.write_reg itp Isa.RAX 0L;
                Interp.Continue
              | chunk :: rest ->
                t.input_queue <- rest;
                let k = min rsi (Bytes.length chunk) in
                for i = 0 to k - 1 do
                  Memory.priv_write_u64 t.mem (rdi + (8 * i))
                    (Int64.of_int (Char.code (Bytes.get chunk i)))
                done;
                Interp.write_reg itp Isa.RAX (Int64.of_int k);
                Interp.Continue
            end
          | "oram_read" -> (
            match t.oram with
            | None -> Interp.Halt (Interp.Ocall_denied index)
            | Some oram ->
              if rdi < 0 || rdi >= Deflection_oram.Path_oram.capacity oram then
                Interp.Halt (Interp.Ocall_denied index)
              else begin
                let v = Deflection_oram.Path_oram.read oram rdi in
                (* one path read + one write-back, a few cycles per bucket *)
                Interp.add_cycles itp
                  (64 * 2 * (Deflection_oram.Path_oram.height oram + 1));
                Telemetry.count t.tm "oram.accesses" 1;
                Interp.write_reg itp Isa.RAX v;
                Interp.Continue
              end)
          | "oram_write" -> (
            match t.oram with
            | None -> Interp.Halt (Interp.Ocall_denied index)
            | Some oram ->
              if rdi < 0 || rdi >= Deflection_oram.Path_oram.capacity oram then
                Interp.Halt (Interp.Ocall_denied index)
              else begin
                Deflection_oram.Path_oram.write oram rdi (Interp.read_reg itp Isa.RSI);
                Interp.add_cycles itp
                  (64 * 2 * (Deflection_oram.Path_oram.height oram + 1));
                Telemetry.count t.tm "oram.accesses" 1;
                Interp.write_reg itp Isa.RAX 0L;
                Interp.Continue
              end)
          | "print" ->
            let plain = Bytes.of_string (Int64.to_string (Interp.read_reg itp Isa.RDI)) in
            if entropy_exceeded spec (8 * Bytes.length plain) then
              Interp.Halt (Interp.Ocall_denied index)
            else begin
              t.bits_sent <- t.bits_sent + (8 * Bytes.length plain);
              let pad =
                match spec.Manifest.pad_output_to with
                | Some p -> p
                | None -> Bytes.length plain
              in
              outputs := seal_record plain (max pad (Bytes.length plain)) itp :: !outputs;
              Interp.write_reg itp Isa.RAX 0L;
              Interp.Continue
            end
          | _ -> Interp.Halt (Interp.Ocall_denied index))
      in
      (* chaos: single-bit flips in the non-measured data/stack pages
         before execution starts — the enclave must stay fail-closed
         (sealed outputs or a documented fault, never a leak) *)
      List.iter
        (fun (addr, bit) ->
          let b = Memory.priv_read_bytes t.mem addr 1 in
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor (1 lsl bit)));
          Memory.priv_write_bytes t.mem addr b)
        (Chaos.mem_flip_plan chaos ~lo:t.layout.Layout.data_lo ~hi:t.layout.Layout.stack_hi);
      let interp_config =
        let c = t.config.interp in
        let c =
          match Chaos.aex_interval_override chaos with
          | Some i -> { c with Interp.aex_interval = Some i }
          | None -> c
        in
        let c =
          match Chaos.fuel_override chaos with
          | Some f -> { c with Interp.fuel = Some f }
          | None -> c
        in
        if Chaos.forces_step_tier chaos then { c with Interp.tier = Interp.Step } else c
      in
      (* the OCall wrapper retries host-side service failures; only a
         failure outlasting the whole budget surfaces as Ocall_failed *)
      let ocall index itp =
        let rec attempt k =
          if Chaos.ocall_fails chaos then begin
            Interp.add_cycles itp 64 (* re-issued host round trip *);
            if k >= resilience.Resilience.max_attempts then
              Interp.Halt (Interp.Ocall_failed index)
            else attempt (k + 1)
          end
          else ocall index itp
        in
        attempt 1
      in
      Profiler.set_symbols profiler loaded.Loader.function_addrs;
      let itp = Interp.create ~config:interp_config ~tm:t.tm ~recorder ~profiler ~ocall t.mem in
      (* verified block boundaries, rebased from text offsets to pcs *)
      Interp.set_block_leaders itp
        (List.map (fun off -> loaded.Loader.text_base + off) t.block_leaders);
      Interp.init_stack itp;
      (* R15 is the reserved shadow-stack pointer; target code cannot
         write it (the verifier rejects such instructions under P5) *)
      Interp.write_reg itp Deflection_annot.Annot.shadow_stack_reg
        (Int64.of_int (Deflection_enclave.Layout.ss_stack_base t.layout));
      let exit = Interp.run itp ~entry:loaded.Loader.entry_addr in
      (* on-demand time blurring (paper Section VII): the reply is held
         until the next quantum boundary, so completion time reveals only
         a coarse bucket *)
      (match t.config.manifest.Manifest.time_quantum with
      | Some q when q > 0 ->
        let c = Interp.cycles itp in
        let padded = (c + q - 1) / q * q in
        Interp.add_cycles itp (padded - c)
      | Some _ | None -> ());
      (* the blurring padding is real enclave time: attribute its samples
         to the final pc so the sample count tracks the cycle count *)
      Profiler.catch_up profiler ~cycles:(Interp.cycles itp) ~pc:(Interp.rip itp);
      if Telemetry.enabled t.tm then begin
        Telemetry.count t.tm "interp.instructions" (Interp.instructions itp);
        Telemetry.count t.tm "interp.cycles" (Interp.cycles itp);
        Telemetry.count t.tm "interp.aexes" (Interp.aex_count itp);
        Telemetry.count t.tm "interp.ocalls" (Interp.ocall_count itp);
        List.iter
          (fun (cls, n) -> Telemetry.count t.tm ("interp.class." ^ cls) n)
          (Interp.class_counts itp)
      end;
      let crash =
        match exit with
        | Interp.Exited _ -> None
        | _ -> Some (build_crash t loaded itp exit)
      in
      Ok
        {
          exit;
          cycles = Interp.cycles itp;
          instructions = Interp.instructions itp;
          aexes = Interp.aex_count itp;
          ocalls = Interp.ocall_count itp;
          leaked_bytes = Memory.leaked_bytes t.mem;
          sealed_outputs = List.rev !outputs;
          crash;
        }
  end
