(** End-to-end CCaaS session orchestration (the full Figure-3 workflow):

    platform setup -> bootstrap enclave -> code-provider attestation +
    sealed binary delivery -> load/verify/rewrite -> data-owner attestation
    + sealed data upload -> execution -> sealed outputs decrypted by the
    owner.

    This is the one-call API used by the examples and the benchmark
    harness. *)

module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp
module Verifier = Deflection_verifier.Verifier
module Layout = Deflection_enclave.Layout
module Manifest = Deflection_policy.Manifest
module Telemetry = Deflection_telemetry.Telemetry
module Ratls = Deflection_attestation.Attestation.Ratls

(** Which protocol stage failed, with the stage-specific detail. *)
type error =
  | Compile_error of Deflection_compiler.Frontend.error
  | Attestation_error of { role : Ratls.role; detail : string }
  | Delivery_error of Bootstrap.ecall_error
      (** sealed-binary delivery failed before or after verification
          (auth, parse, load, rewrite) *)
  | Verifier_rejection of Verifier.rejection
      (** the in-enclave verifier refused the binary *)
  | Upload_error of Bootstrap.ecall_error
  | Runtime_error of Bootstrap.ecall_error
  | Decrypt_error of string

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string
(** Renders the same messages the pre-structured string API produced. *)

type outcome = {
  verifier_report : Verifier.report;
  rewritten_imms : int;
  exit : Interp.exit_reason;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
  outputs : bytes list;  (** plaintext records, decrypted by the owner *)
  telemetry : Telemetry.snapshot;
      (** spans/counters for the whole protocol run (root span
          ["session"]) — always populated, from a private registry when no
          [tm] was passed *)
}

val run :
  ?policies:Policy.Set.t ->
  ?ssa_q:int ->
  ?optimize:bool ->
  ?layout:Layout.config ->
  ?manifest:Manifest.t ->
  ?interp:Interp.config ->
  ?seed:int64 ->
  ?oram_capacity:int ->
  ?tm:Telemetry.t ->
  source:string ->
  inputs:bytes list ->
  unit ->
  (outcome, error) result
(** Run the whole protocol. [inputs] are the data owner's chunks, consumed
    one per [recv] OCall. Defaults: P1-P6, q=20, small layout, default
    manifest, calm platform. [tm] threads one registry through every stage
    (compile, attest, deliver, load/verify/rewrite, upload, execute,
    decrypt); when omitted, a fresh private registry backs
    [outcome.telemetry]. *)

val compile_only :
  ?policies:Policy.Set.t ->
  ?ssa_q:int ->
  string ->
  (Deflection_isa.Objfile.t, string) result
