(** End-to-end CCaaS session orchestration (the full Figure-3 workflow):

    platform setup -> bootstrap enclave -> code-provider attestation +
    sealed binary delivery -> load/verify/rewrite -> data-owner attestation
    + sealed data upload -> execution -> sealed outputs decrypted by the
    owner.

    This is the one-call API used by the examples and the benchmark
    harness. *)

module Policy = Deflection_policy.Policy
module Interp = Deflection_runtime.Interp
module Verifier = Deflection_verifier.Verifier
module Layout = Deflection_enclave.Layout
module Manifest = Deflection_policy.Manifest
module Telemetry = Deflection_telemetry.Telemetry
module Ratls = Deflection_attestation.Attestation.Ratls
module Flight_recorder = Deflection_forensics.Flight_recorder
module Profiler = Deflection_forensics.Profiler
module Report = Deflection_forensics.Report
module Chaos = Deflection_chaos.Chaos
module Resilience = Deflection_chaos.Resilience

(** Which protocol stage failed, with the stage-specific detail. *)
type error =
  | Compile_error of Deflection_compiler.Frontend.error
  | Attestation_error of { role : Ratls.role; detail : string }
  | Delivery_error of Bootstrap.ecall_error
      (** sealed-binary delivery failed before or after verification
          (auth, parse, load, rewrite) *)
  | Verifier_rejection of Verifier.rejection
      (** the in-enclave verifier refused the binary *)
  | Upload_error of Bootstrap.ecall_error
  | Runtime_error of Bootstrap.ecall_error
  | Decrypt_error of string
  | Stage_timeout of { stage : string; detail : string }
      (** the stage's retry/backoff budget ran out without ever producing
          a structured response (e.g. every transmission was dropped);
          persistent structured failures keep their own stage error *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string
(** Renders the same messages the pre-structured string API produced. *)

val exit_code : error -> int
(** The documented process exit code for each failure stage, all distinct:
    verifier rejection 2, compile 3, attestation 4, runtime 5, delivery 6,
    upload 7, decrypt 8, stage timeout 10. (The CLI additionally uses 9
    for a protocol-level [Ok] whose enclave program aborted or faulted,
    11 when the watchdog fuel ran out, and 1 for usage/other errors.) *)

type outcome = {
  verifier_report : Verifier.report;
  rewritten_imms : int;
  exit : Interp.exit_reason;
  cycles : int;
  instructions : int;
  aexes : int;
  ocalls : int;
  leaked_bytes : int;
  outputs : bytes list;  (** plaintext records, decrypted by the owner *)
  telemetry : Telemetry.snapshot;
      (** spans/counters for the whole protocol run (root span
          ["session"]) — always populated, from a private registry when no
          [tm] was passed *)
  crash : Report.crash option;
      (** present iff [exit] is abnormal (policy abort, fault, limit):
          the frozen forensic state of the enclave at the point of death *)
  retries : Resilience.stage_stats list;
      (** per-stage retry/backoff statistics, in execution order; every
          stage appears (clean runs show one attempt and no backoff) *)
}

val process_exit_code : (outcome, error) result -> int
(** The full CLI exit-code contract in one place: [Error e] is
    [exit_code e]; a protocol-level [Ok] maps the enclave program's exit
    reason — normal termination 0, watchdog fuel exhaustion 11, any other
    abort/fault 9. *)

val run :
  ?policies:Policy.Set.t ->
  ?ssa_q:int ->
  ?optimize:bool ->
  ?layout:Layout.config ->
  ?manifest:Manifest.t ->
  ?interp:Interp.config ->
  ?seed:int64 ->
  ?oram_capacity:int ->
  ?verifier_cache:Verifier.Cache.t ->
  ?precompiled:Deflection_isa.Objfile.t ->
  ?audit:Deflection_audit.Audit.sink ->
  ?verification:Verifier.mode ->
  ?chaos:Chaos.t ->
  ?resilience_config:Resilience.config ->
  ?tm:Telemetry.t ->
  ?recorder:Flight_recorder.t ->
  ?profiler:Profiler.t ->
  source:string ->
  inputs:bytes list ->
  unit ->
  (outcome, error) result
(** Run the whole protocol. [inputs] are the data owner's chunks, consumed
    one per [recv] OCall. Defaults: P1-P6, q=20, small layout, default
    manifest, calm platform. [tm] threads one registry through every stage
    (compile, attest, deliver, load/verify/rewrite, upload, execute,
    decrypt); when omitted, a fresh private registry backs
    [outcome.telemetry]. [recorder]/[profiler] (default disabled) attach
    the flight recorder and the sampling profiler to the interpreter.

    [verifier_cache] (default none) is handed to the bootstrap enclave so
    its binary-delivery ECall consults the shared measurement-keyed
    verdict cache before running a verifier pass; [precompiled] skips the
    code provider's compile step and delivers the given objfile instead —
    together they are the gateway's verify-once/admit-many fast path.
    [audit] (default none) hands the bootstrap enclave an audit-log sink:
    the admission decision the delivery ECall renders appends one
    hash-chained record under the sink's worker lane.
    [verification] (default [Verifier.Descent]) selects how the enclave
    verifies the delivered binary — classic recursive descent, the
    witness-checked linear pass, or witnessed with a descent fallback on
    witness-pass rejections; it is folded into the measured consumer
    identity, the verdict-cache key and every audit record.

    [chaos] (default {!Chaos.disabled}) threads a fault-injection engine
    through every stage: sealed records pass {!Chaos.transport}, quotes
    pass {!Chaos.corrupt_quote}, and the execution stage applies memory
    flips, AEX storms, OCall failures and fuel limits. Each logical
    message is sealed exactly once — retries resend the identical record,
    so the channel's sequence discipline rejects duplicates and replays
    while retransmissions of a lost record still land.
    [resilience_config] (default {!Resilience.default_config}) bounds the
    per-stage retry/backoff/timeout budget; backoff jitter derives from
    the chaos plan's seed (or [seed] when chaos is off), so runs are
    deterministic either way. *)

val compile_only :
  ?policies:Policy.Set.t ->
  ?ssa_q:int ->
  string ->
  (Deflection_isa.Objfile.t, string) result
