module Json = Deflection_telemetry.Json
module Hex = Deflection_util.Hex
module Hmac = Deflection_crypto.Hmac
module Verifier = Deflection_verifier.Verifier
module Attestation = Deflection_attestation.Attestation
module Audit = Deflection_audit.Audit
module Chaos = Deflection_chaos.Chaos
module Resilience = Deflection_chaos.Resilience

type verdict = (Verifier.report * Verifier.classification, Verifier.rejection) result
type entry = { tenant : string; key : string; mode : string; verdict : verdict }
type segment_outcome = Seg_loaded of int | Seg_bad_mac | Seg_malformed

type load_report = {
  found : bool;
  malformed : bool;
  truncated : bool;
  generation : int;
  segments : segment_outcome list;
  entries_loaded : int;
  segments_discarded : int;
}

let segment_outcome_to_json = function
  | Seg_loaded n -> Json.Obj [ ("status", Json.Str "loaded"); ("entries", Json.Int n) ]
  | Seg_bad_mac -> Json.Obj [ ("status", Json.Str "bad-mac") ]
  | Seg_malformed -> Json.Obj [ ("status", Json.Str "malformed") ]

let load_report_to_json r =
  Json.Obj
    [
      ("found", Json.Bool r.found);
      ("malformed", Json.Bool r.malformed);
      ("truncated", Json.Bool r.truncated);
      ("generation", Json.Int r.generation);
      ("segments", Json.List (List.map segment_outcome_to_json r.segments));
      ("entries_loaded", Json.Int r.entries_loaded);
      ("segments_discarded", Json.Int r.segments_discarded);
    ]

let schema = "deflection-server-cache/1"

type t = {
  dir : string;
  file : string;
  key : bytes;  (* platform sealing key: wrong platform -> every MAC fails *)
  segment_entries : int;
  resilience : Resilience.t;
  mutable gen : int;
}

(* ------------------------------------------------------------------ *)
(* Verdict (de)serialization.  The JSON form is what goes on disk; the
   canonical form below is what gets MAC'd. *)

let report_to_json (r : Verifier.report) =
  Json.Obj
    [
      ("instructions_checked", Json.Int r.instructions_checked);
      ("store_annotations", Json.Int r.store_annotations);
      ("rsp_annotations", Json.Int r.rsp_annotations);
      ("cfi_annotations", Json.Int r.cfi_annotations);
      ("prologues", Json.Int r.prologues);
      ("epilogues", Json.Int r.epilogues);
      ("ssa_checks", Json.Int r.ssa_checks);
    ]

let verdict_to_json : verdict -> Json.t = function
  | Ok (rep, cls) ->
    let machinery, guarded = Verifier.classification_offsets cls in
    Json.Obj
      [
        ("status", Json.Str "accepted");
        ("report", report_to_json rep);
        ("machinery", Json.List (List.map (fun o -> Json.Int o) machinery));
        ("guarded_stores", Json.List (List.map (fun o -> Json.Int o) guarded));
      ]
  | Error rej ->
    Json.Obj
      [
        ("status", Json.Str "rejected");
        ("pass", Json.Str (Verifier.pass_label rej.Verifier.pass));
        ("offset", Json.Int rej.Verifier.offset);
        ("reason", Json.Str rej.Verifier.reason);
      ]

let str_member k j = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None
let int_member k j = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None

let int_list_member k j =
  match Json.member k j with
  | Some (Json.List l) ->
    List.fold_left
      (fun acc e -> match (acc, e) with Some a, Json.Int i -> Some (i :: a) | _ -> None)
      (Some []) l
    |> Option.map List.rev
  | _ -> None

let pass_of_label = function
  | "symbols" -> Some Verifier.Symbols
  | "scan" -> Some Verifier.Scan
  | "cfg" -> Some Verifier.Cfg
  | "witness" -> Some Verifier.Witness
  | _ -> None

let report_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* instructions_checked = int_member "instructions_checked" j in
  let* store_annotations = int_member "store_annotations" j in
  let* rsp_annotations = int_member "rsp_annotations" j in
  let* cfi_annotations = int_member "cfi_annotations" j in
  let* prologues = int_member "prologues" j in
  let* epilogues = int_member "epilogues" j in
  let* ssa_checks = int_member "ssa_checks" j in
  Some
    {
      Verifier.instructions_checked;
      store_annotations;
      rsp_annotations;
      cfi_annotations;
      prologues;
      epilogues;
      ssa_checks;
    }

let verdict_of_json j : verdict option =
  let ( let* ) o f = Option.bind o f in
  match str_member "status" j with
  | Some "accepted" ->
    let* rep = Option.bind (Json.member "report" j) report_of_json in
    let* machinery = int_list_member "machinery" j in
    let* guarded_stores = int_list_member "guarded_stores" j in
    Some (Ok (rep, Verifier.classification_of_offsets ~machinery ~guarded_stores))
  | Some "rejected" ->
    let* pass = Option.bind (str_member "pass" j) pass_of_label in
    let* offset = int_member "offset" j in
    let* reason = str_member "reason" j in
    Some (Error { Verifier.pass; offset; reason })
  | _ -> None

(* The injective per-entry encoding the segment MAC covers: every field
   length-prefixed via Audit.mac_body, variable-length offset lists
   preceded by their count. *)
let canonical_entry (e : entry) =
  let fields =
    [ e.tenant; Hex.encode_string e.key; e.mode ]
    @
    match e.verdict with
    | Ok (rep, cls) ->
      let machinery, guarded = Verifier.classification_offsets cls in
      [
        "accepted";
        string_of_int rep.Verifier.instructions_checked;
        string_of_int rep.Verifier.store_annotations;
        string_of_int rep.Verifier.rsp_annotations;
        string_of_int rep.Verifier.cfi_annotations;
        string_of_int rep.Verifier.prologues;
        string_of_int rep.Verifier.epilogues;
        string_of_int rep.Verifier.ssa_checks;
        "machinery";
        string_of_int (List.length machinery);
      ]
      @ List.map string_of_int machinery
      @ [ "guarded"; string_of_int (List.length guarded) ]
      @ List.map string_of_int guarded
    | Error rej ->
      [
        "rejected";
        Verifier.pass_label rej.Verifier.pass;
        string_of_int rej.Verifier.offset;
        rej.Verifier.reason;
      ]
  in
  Bytes.to_string (Audit.mac_body "deflection-server-entry/1" fields)

(* The MAC binds the generation and the segment's *position* (not a
   declared index), so reordering two well-MAC'd segments — or replaying
   one from an older generation — fails verification. *)
let segment_mac ~key ~generation ~position entry_canons =
  Hmac.sha256 ~key
    (Audit.mac_body "DEFLECTION-server-segment-v1"
       (string_of_int generation :: string_of_int position :: entry_canons))

let final_mac ~key ~generation ~n_segments =
  Hmac.sha256 ~key
    (Audit.mac_body "DEFLECTION-server-final-v1"
       [ string_of_int generation; string_of_int n_segments ])

(* ------------------------------------------------------------------ *)

let entry_to_json e =
  Json.Obj
    [
      ("tenant", Json.Str e.tenant);
      ("key", Json.Str (Hex.encode_string e.key));
      ("mode", Json.Str e.mode);
      ("verdict", verdict_to_json e.verdict);
    ]

let entry_of_json j =
  let ( let* ) o f = Option.bind o f in
  let* tenant = str_member "tenant" j in
  let* key_hex = str_member "key" j in
  let* key = try Some (Bytes.to_string (Hex.decode key_hex)) with _ -> None in
  let* mode = str_member "mode" j in
  let* _ = Verifier.mode_of_label mode in
  let* verdict = Option.bind (Json.member "verdict" j) verdict_of_json in
  Some { tenant; key; mode; verdict }

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let seg, rest = take n [] l in
    seg :: chunks n rest

let seal_doc t ~generation entries =
  let segments = chunks t.segment_entries entries in
  let seg_json position seg =
    let canons = List.map canonical_entry seg in
    Json.Obj
      [
        ("index", Json.Int position);
        ("entries", Json.List (List.map entry_to_json seg));
        ("mac", Json.Str (Hex.encode (segment_mac ~key:t.key ~generation ~position canons)));
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("generation", Json.Int generation);
      ("segments", Json.List (List.mapi seg_json segments));
      ( "final_mac",
        Json.Str (Hex.encode (final_mac ~key:t.key ~generation ~n_segments:(List.length segments)))
      );
    ]

(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let disk_generation file =
  if not (Sys.file_exists file) then 0
  else
    match Json.parse (read_file file) with
    | Ok doc -> Option.value ~default:0 (int_member "generation" doc)
    | Error _ -> 0

let create ?(segment_entries = 32) ~dir ~platform () =
  if segment_entries < 1 then invalid_arg "Persist.create: segment_entries must be >= 1";
  mkdir_p dir;
  let file = Filename.concat dir "verdict-cache.json" in
  {
    dir;
    file;
    key = Attestation.Platform.sealing_key platform;
    segment_entries;
    resilience = Resilience.create ~seed:1L ();
    gen = disk_generation file;
  }

let path t = t.file
let generation t = t.gen

let save ?(chaos = Chaos.disabled) ~round t entries =
  let generation = t.gen + 1 in
  let doc = seal_doc t ~generation entries in
  let bytes = Json.to_string doc in
  let bytes =
    (* a torn write: only a prefix of the sealed bytes reaches the disk *)
    match Chaos.torn_write chaos ~round with
    | None -> bytes
    | Some frac16 -> String.sub bytes 0 (String.length bytes * frac16 / 16)
  in
  let attempt ~attempt:_ =
    match
      let tmp = t.file ^ ".tmp" in
      write_file tmp bytes;
      if Sys.file_exists t.file then Sys.rename t.file (t.file ^ ".1");
      Sys.rename tmp t.file
    with
    | () -> Resilience.Done ()
    | exception Sys_error m -> Resilience.Transient m
  in
  match Resilience.run t.resilience ~stage:"persist.seal" attempt with
  | Ok () ->
    t.gen <- generation;
    Ok ()
  | Error (Resilience.Timed_out { last; _ }) -> Error last
  | Error (Resilience.Gave_up e) -> Error e

(* ------------------------------------------------------------------ *)

let none_loaded ~found ~malformed ~generation =
  {
    found;
    malformed;
    truncated = false;
    generation;
    segments = [];
    entries_loaded = 0;
    segments_discarded = 0;
  }

(* Chaos doctoring of the bytes the host serves: replace one segment with
   its previous-generation counterpart (kept on disk as [.1] by [save] —
   exactly the material a real host still has), or corrupt one MAC. *)
let apply_host_tamper ~chaos t doc =
  let with_segments f =
    match Json.member "segments" doc with
    | Some (Json.List segs) when segs <> [] -> (
      match doc with
      | Json.Obj fields ->
        let segs' = f segs in
        Json.Obj
          (List.map
             (fun (k, v) -> if k = "segments" then (k, Json.List segs') else (k, v))
             fields)
      | _ -> doc)
    | _ -> doc
  in
  let doc =
    match Chaos.stale_segment chaos with
    | None -> doc
    | Some s ->
      with_segments (fun segs ->
          let n = List.length segs in
          let pos = s mod n in
          let stale =
            let old_file = t.file ^ ".1" in
            if not (Sys.file_exists old_file) then None
            else
              match Json.parse (read_file old_file) with
              | Ok old_doc -> (
                match Json.member "segments" old_doc with
                | Some (Json.List old_segs) when old_segs <> [] ->
                  Some (List.nth old_segs (pos mod List.length old_segs))
                | _ -> None)
              | Error _ -> None
          in
          match stale with
          | None -> segs
          | Some old_seg -> List.mapi (fun i seg -> if i = pos then old_seg else seg) segs)
  in
  match Chaos.mac_corrupt chaos with
  | None -> doc
  | Some s ->
    with_segments (fun segs ->
        let n = List.length segs in
        let pos = s mod n in
        List.mapi
          (fun i seg ->
            if i <> pos then seg
            else
              match seg with
              | Json.Obj fields ->
                Json.Obj
                  (List.map
                     (fun (k, v) ->
                       match (k, v) with
                       | "mac", Json.Str m when m <> "" ->
                         let flipped =
                           String.mapi (fun j c -> if j = 0 then (if c = '0' then '1' else '0') else c) m
                         in
                         (k, Json.Str flipped)
                       | _ -> (k, v))
                     fields)
              | _ -> seg)
          segs)

let verify_segment t ~generation ~position seg =
  match Json.member "entries" seg with
  | Some (Json.List entry_js) -> (
    let entries =
      List.fold_left
        (fun acc j ->
          match (acc, entry_of_json j) with Some a, Some e -> Some (e :: a) | _ -> None)
        (Some []) entry_js
      |> Option.map List.rev
    in
    match (entries, int_member "index" seg, str_member "mac" seg) with
    | Some entries, Some idx, Some mac_hex when idx = position -> (
      match (try Some (Hex.decode mac_hex) with _ -> None) with
      | None -> (Seg_malformed, [])
      | Some tag ->
        let canons = List.map canonical_entry entries in
        if Hmac.verify ~key:t.key (Audit.mac_body "DEFLECTION-server-segment-v1"
              (string_of_int generation :: string_of_int position :: canons))
             ~tag
        then (Seg_loaded (List.length entries), entries)
        else (Seg_bad_mac, []))
    | Some _, Some _, Some _ -> (Seg_bad_mac, [])  (* declared index out of place *)
    | _ -> (Seg_malformed, []))
  | _ -> (Seg_malformed, [])

let load ?(chaos = Chaos.disabled) t =
  if not (Sys.file_exists t.file) then
    ([], none_loaded ~found:false ~malformed:false ~generation:0)
  else
    let raw =
      let attempt ~attempt:_ =
        match read_file t.file with
        | s -> Resilience.Done s
        | exception Sys_error m -> Resilience.Transient m
      in
      match Resilience.run t.resilience ~stage:"persist.load" attempt with
      | Ok s -> Some s
      | Error _ -> None
    in
    match raw with
    | None -> ([], none_loaded ~found:true ~malformed:true ~generation:0)
    | Some raw -> (
      match Json.parse raw with
      | Error _ -> ([], none_loaded ~found:true ~malformed:true ~generation:0)
      | Ok doc -> (
        let doc = apply_host_tamper ~chaos t doc in
        match (str_member "schema" doc, int_member "generation" doc, Json.member "segments" doc)
        with
        | Some s, Some generation, Some (Json.List segs) when s = schema ->
          let outcomes_entries =
            List.mapi (fun position seg -> verify_segment t ~generation ~position seg) segs
          in
          let segments = List.map fst outcomes_entries in
          let entries = List.concat_map snd outcomes_entries in
          let truncated =
            match str_member "final_mac" doc with
            | None -> true
            | Some mac_hex -> (
              match (try Some (Hex.decode mac_hex) with _ -> None) with
              | None -> true
              | Some tag ->
                not
                  (Hmac.verify ~key:t.key
                     (Audit.mac_body "DEFLECTION-server-final-v1"
                        [ string_of_int generation; string_of_int (List.length segs) ])
                     ~tag))
          in
          ( entries,
            {
              found = true;
              malformed = false;
              truncated;
              generation;
              segments;
              entries_loaded = List.length entries;
              segments_discarded =
                List.length (List.filter (function Seg_loaded _ -> false | _ -> true) segments);
            } )
        | _ -> ([], none_loaded ~found:true ~malformed:true ~generation:0)))
