(** Sealed on-disk persistence for the server's verdict caches.

    The host filesystem is the adversary (BesFS model): whatever bytes
    come back at load time are only trusted after in-enclave integrity
    checks, and every integrity failure degrades to {e cold
    re-verification} of the affected entries — never to admitting from a
    forged verdict, never to refusing to start.

    The on-disk document ([deflection-server-cache/1]) reuses the audit
    plane's sealing discipline: entries are grouped into segments, each
    segment carries an HMAC-SHA256 under the platform sealing key
    ({!Deflection_attestation.Attestation.Platform.sealing_key}) over the
    injective {!Deflection_audit.Audit.mac_body} encoding of (generation,
    segment position, entry bytes), and a closing MAC binds (generation,
    segment count, entry count). Consequences, each pinned by
    [suite_server]:

    - a bit flip inside a segment, a spliced/reordered segment, a segment
      replayed from an older generation, or a file sealed by a different
      platform fails {e that segment's} MAC — the segment is discarded,
      everything else loads;
    - a dropped segment or a truncated tail fails the closing MAC — the
      report says [truncated], surviving segments still load;
    - a torn write (unparseable file) loads nothing.

    Losing entries only costs warmness: verdicts are content-addressed
    (measurement-keyed) and deterministic, so a cold miss re-derives
    exactly what was lost. That is also why replaying an entire stale
    {e file} is harmless — its verdicts are the ones re-verification
    would produce. *)

module Json = Deflection_telemetry.Json
module Verifier = Deflection_verifier.Verifier
module Attestation = Deflection_attestation.Attestation
module Chaos = Deflection_chaos.Chaos

type verdict = (Verifier.report * Verifier.classification, Verifier.rejection) result

type entry = { tenant : string; key : string; mode : string; verdict : verdict }
(** [key] is the raw 32-byte cache key ({!Verifier.Cache.key}); [mode] is
    the {!Verifier.mode_label} of the verification mode the verdict was
    rendered under — redundant with the key binding (the key hashes the
    mode) but carried explicitly so recovery can refuse to warm a cache
    whose server now runs a different mode, and so an operator reading
    the sealed file can see which discipline admitted each entry. *)

(** What became of one on-disk segment at load. *)
type segment_outcome =
  | Seg_loaded of int  (** entries recovered *)
  | Seg_bad_mac  (** flip / splice / stale generation / wrong platform *)
  | Seg_malformed  (** structurally unreadable *)

type load_report = {
  found : bool;  (** a state file existed *)
  malformed : bool;  (** unparseable (torn write) — nothing loaded *)
  truncated : bool;  (** closing MAC failed (dropped/reordered/truncated tail) *)
  generation : int;  (** generation claimed by the file, 0 when none *)
  segments : segment_outcome list;
  entries_loaded : int;
  segments_discarded : int;
}

val load_report_to_json : load_report -> Json.t

type t

val create :
  ?segment_entries:int -> dir:string -> platform:Attestation.Platform.t -> unit -> t
(** A handle on [dir]/verdict-cache.json, sealed under [platform]'s
    sealing key. [segment_entries] (default 32) bounds entries per
    segment. Creates [dir] if missing. The handle starts at the
    generation found on disk (0 if none), so a restarted server's first
    save supersedes — and MAC-invalidates — every older segment. *)

val path : t -> string
val generation : t -> int

val save : ?chaos:Chaos.t -> round:int -> t -> entry list -> (unit, string) result
(** Seal [entries] as generation [generation t + 1] and atomically
    replace the state file (write-temp-then-rename), keeping the previous
    file as [path t ^ ".1"] — the stale material a hostile host can
    replay. Transient write failures are retried under the resilience
    policy; [Error] means the budget ran out (the server keeps serving,
    only warmness across a crash is lost). A pending chaos [Torn_write]
    for [round] truncates the bytes that reach the disk. *)

val load : ?chaos:Chaos.t -> t -> entry list * load_report
(** Read the state file back through the hostile-host boundary and verify
    it as described above. Only entries from segments whose MAC verifies
    are returned. Pending chaos [Stale_segment] / [Mac_corrupt] faults
    doctor the bytes the host serves before verification — the typed
    degradation they must produce is exactly what the report records. *)
