(** The persistent multi-tenant gateway server.

    A server is a round-based serving loop around
    {!Deflection_gateway.Gateway.run_batch}: requests arrive on a bounded
    ingress queue ({!offer}), each {!run_round} admits up to a batch of
    them — grouped per tenant, each tenant's sub-batch running under its
    own verdict cache, fuel budget and resilience policy — and the
    verdict caches are periodically sealed to host storage through
    {!Persist} so a restarted server re-serves the same workload warm.

    {b Isolation (Occlum model).} Tenants are isolated structurally: one
    {!Deflection_verifier.Verifier.Cache} per tenant, trimmed to that
    tenant's entry quota only at round boundaries, so another tenant's
    eviction pressure cannot evict a verdict, and a poisoned single-flight
    claim cannot block anyone (and since the verifier-cache fix, not even
    the tenant itself — waiters convert to a miss). An in-flight quota
    caps how much of a round's batch one tenant can claim; over-quota
    requests stay queued without blocking the tenants behind them, and a
    fuel quota bounds how long a tenant's admitted code may run.

    {b Admission control.} The ingress queue is bounded; offers beyond
    capacity are shed with a typed [Overloaded] rejection carrying a
    retry-after hint ({!exit_overloaded} at the CLI). Shedding is
    deterministic: it depends on the arrival order and queue state alone,
    never on timing or the domain schedule.

    {b Determinism.} Everything the server reports except wall-clock
    latency histograms (isolated under a ["timing"] key in {!doc}) is a
    function of (config, request sequence, prior sealed state): results,
    per-tenant accounting, cache hit/miss totals, trim victims (epoch
    LRU, ties on key bytes), and shed decisions are identical for any
    worker count — [suite_server] pins K=1 vs K=4. *)

module Policy = Deflection_policy.Policy
module Layout = Deflection_enclave.Layout
module Gateway = Deflection_gateway.Gateway
module Verifier = Deflection_verifier.Verifier
module Chaos = Deflection_chaos.Chaos
module Resilience = Deflection_chaos.Resilience
module Json = Deflection_telemetry.Json

(** Per-tenant resource bounds. *)
type quota = {
  max_entries : int;  (** verdict-cache entries kept across rounds *)
  max_inflight : int;  (** sessions admitted per round *)
  fuel : int option;  (** watchdog fuel per session; [None] = unlimited *)
}

val default_quota : quota
(** 64 entries, 8 in-flight, no fuel cap. *)

type tenant_config = { t_name : string; t_quota : quota }

type config = {
  policies : Policy.Set.t;
  ssa_q : int;
  verification : Verifier.mode;
      (** verification mode every tenant's sessions run under (default
          [Descent]); bound into each verdict-cache key and carried on
          every persisted entry — recovery refuses to warm a cache with
          entries sealed under a different mode *)
  layout : Layout.config option;
  tenants : tenant_config list;
  queue_capacity : int;
  batch_size : int;  (** sessions admitted per round, across tenants *)
  workers : int;  (** domain fan-out inside each tenant sub-batch *)
  seed : int64;  (** drives the load generator's arrival schedule *)
  state_dir : string option;  (** sealed-cache persistence root; [None] = no persistence *)
  persist_every : int;  (** seal every N rounds (0 = only at shutdown) *)
  segment_entries : int;
  resilience : Resilience.config;
}

val default_config : config
(** 4 tenants [t0]-[t3] with {!default_quota} ([t3] fuel-capped), queue
    64, batch 8, 1 worker, seed 7, no persistence. *)

(** Why an offer was refused. *)
type reject_reason =
  | Overloaded of { retry_after_rounds : int }
      (** ingress queue full; retry after ~this many rounds drain *)
  | Unknown_tenant

val exit_overloaded : int
(** 13 — the CLI exit code for a run that shed more than its tolerated
    fraction. *)

val exit_recovery_failure : int
(** 14 — the CLI exit code when [--expect-warm] found no recovered
    warmness after a restart. *)

type t

val create : ?chaos:Chaos.t -> config -> t
(** Build the server; when [config.state_dir] is set, load and verify the
    sealed verdict cache found there (per-segment, fail-closed — see
    {!Persist}) and preload every surviving entry into its tenant's
    cache. {!recovery} reports what happened. *)

val config : t -> config
val round : t -> int
val killed : t -> bool

val recovery : t -> Persist.load_report option
(** [None] when the server was built without persistence. *)

val offer : t -> tenant:string -> Gateway.job -> [ `Queued | `Rejected of reject_reason ]

val run_round : t -> [ `Ok | `Killed ]
(** Admit up to [batch_size] queued requests (skipping, not blocking on,
    tenants at their in-flight quota), run them as per-tenant sub-batches
    over [workers] domains, fold the results into the server's
    accounting, trim each tenant cache to its quota, and seal state if
    the persistence cadence says so. [`Killed] means a chaos kill point
    fired: the server stopped abruptly — no trim, no seal, queue lost —
    exactly the crash the sealed cache must recover from. *)

val drain : t -> unit
(** Run rounds until the ingress queue is empty (or a kill point fires). *)

val shutdown : t -> unit
(** Graceful stop: {!drain}, then seal the verdict caches and audit log
    regardless of cadence. *)

val audit_doc : t -> Json.t
(** Seal the admission audit log (non-destructive) — every admitted
    session appended its verdict record. *)

val results : t -> (string * int) list
(** [(label, exit code)] of every admitted session, in admission order. *)

val doc : t -> Json.t
(** The [deflection-server/1] report: offered/admitted/shed/rejected
    accounting (global and per tenant, with quota and cache stats),
    queue-wait round histogram, recovery report, exit-code histogram —
    all deterministic — plus wall-clock latency histograms under
    ["timing"]. *)

(** {2 Open-loop load generation} *)

module Load : sig
  val arrivals :
    config -> offered:int -> rounds:int -> round:int -> (string * Gateway.job) list
  (** The deterministic arrival schedule: round [round]'s [(tenant, job)]
      list of an [offered]-requests-over-[rounds] open-loop run, derived
      from [config.seed]. The mix per tenant cycles compliant variants
      (more distinct binaries than the entry quota, so trims happen),
      aborting programs, policy-rejected programs; a fuel-capped tenant
      gets compliant programs its budget cannot finish; a slice goes to
      an unknown tenant. Includes any pending chaos queue-storm burst
      when driven through {!offer_load}. *)

  val expected_exit : config -> string -> int option
  (** The oracle: the exit code an admitted session with this label must
      produce — 0 compliant, 2 rejected, 9 abort, 11 fuel-capped tenant.
      [None] for labels the generator did not produce. Any admitted
      result that disagrees is a soundness violation (an admitted
      rejection is a fail-open). *)
end

val offer_load : t -> offered:int -> rounds:int -> unit
(** Offer the current round's {!Load.arrivals} (plus any chaos
    queue-storm burst) to the ingress queue. *)

val serve_load : t -> offered:int -> rounds:int -> kill_after:int option -> [ `Done | `Killed ]
(** Drive the standard loop: for each round, {!offer_load} then
    {!run_round}; then {!drain} and {!shutdown}. [kill_after (Some r)]
    aborts the process with exit 137 after round [r]'s sessions ran but
    before its seal — a scripted SIGKILL for crash-recovery smoke tests. *)

(** {2 Chaos campaign} *)

type campaign_case = {
  c_seed : int64;
  c_plan : Chaos.plan;
  c_killed : int;  (** abrupt deaths survived (kill points fired) *)
  c_admitted : int;
  c_shed : int;
  c_recovery_discarded : int;  (** tampered segments discarded across restarts *)
  c_violations : string list;
}

type campaign = {
  base_seed : int64;
  cases : campaign_case list;
  total_violations : int;
  fired : (string * int) list;
}

val chaos_campaign :
  ?base_seed:int64 -> ?seeds:int -> ?offered:int -> state_root:string -> unit -> campaign
(** For each seed: generate a server fault plan
    ({!Chaos.generate_server}), run a small multi-tenant load with
    persistence under that plan — restarting the server mid-run (and
    after every kill point) against the same state dir, so load-time
    tamper faults meet a real recovery — and check every admitted result
    against {!Load.expected_exit}, the audit chain against
    {!Deflection_audit.Audit.verify}, and the final sealed state against
    a clean reload. Zero violations means: every tamper class degraded to
    cold re-verification, and nothing was ever admitted from a forged
    verdict. *)

val campaign_to_json : campaign -> Json.t
