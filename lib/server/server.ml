module Prng = Deflection_util.Prng
module Policy = Deflection_policy.Policy
module Layout = Deflection_enclave.Layout
module Interp = Deflection_runtime.Interp
module Gateway = Deflection_gateway.Gateway
module Verifier = Deflection_verifier.Verifier
module Attestation = Deflection_attestation.Attestation
module Audit = Deflection_audit.Audit
module Chaos = Deflection_chaos.Chaos
module Resilience = Deflection_chaos.Resilience
module Telemetry = Deflection_telemetry.Telemetry
module Hdr = Deflection_telemetry.Hdr
module Json = Deflection_telemetry.Json

type quota = { max_entries : int; max_inflight : int; fuel : int option }

let default_quota = { max_entries = 64; max_inflight = 8; fuel = None }

type tenant_config = { t_name : string; t_quota : quota }

type config = {
  policies : Policy.Set.t;
  ssa_q : int;
  verification : Verifier.mode;
  layout : Layout.config option;
  tenants : tenant_config list;
  queue_capacity : int;
  batch_size : int;
  workers : int;
  seed : int64;
  state_dir : string option;
  persist_every : int;
  segment_entries : int;
  resilience : Resilience.config;
}

let default_config =
  {
    policies = Policy.Set.p1_p6;
    ssa_q = 20;
    verification = Verifier.Descent;
    layout = None;
    tenants =
      [
        { t_name = "t0"; t_quota = default_quota };
        { t_name = "t1"; t_quota = default_quota };
        { t_name = "t2"; t_quota = default_quota };
        { t_name = "t3"; t_quota = { default_quota with fuel = Some 5 } };
      ];
    queue_capacity = 64;
    batch_size = 8;
    workers = 1;
    seed = 7L;
    state_dir = None;
    persist_every = 1;
    segment_entries = 32;
    resilience = Resilience.default_config;
  }

type reject_reason = Overloaded of { retry_after_rounds : int } | Unknown_tenant

let exit_overloaded = 13
let exit_recovery_failure = 14

type tenant_state = {
  tc : tenant_config;
  cache : Verifier.Cache.t;
  mutable t_offered : int;
  mutable t_admitted : int;
  mutable t_shed : int;
  mutable t_trim_evictions : int;
  t_exits : (int, int) Hashtbl.t;
}

type t = {
  cfg : config;
  platform : Attestation.Platform.t;
  tenants_tbl : (string, tenant_state) Hashtbl.t;
  audit : Audit.Log.t;
  persist : Persist.t option;
  chaos : Chaos.t;
  mutable recovery_ : Persist.load_report option;
  mutable preloaded : int;
  (* bounded ingress queue: classic two-list FIFO *)
  mutable q_front : (string * Gateway.job * int) list;
  mutable q_back : (string * Gateway.job * int) list;
  mutable q_len : int;
  mutable round_ : int;
  mutable killed_ : bool;
  mutable offered : int;
  mutable admitted : int;
  mutable shed : int;
  mutable rejected : int;
  exits : (int, int) Hashtbl.t;
  wait_rounds : Hdr.t;
  lat : (string, Hdr.t) Hashtbl.t;  (* wall-clock; "timing" block only *)
  mutable results_rev : (string * int) list;
  mutable persist_failures : int;
}

let bump tbl k v = Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let tenant_state t name = Hashtbl.find_opt t.tenants_tbl name

(* The per-tenant cache never self-evicts: its internal capacity leaves
   headroom for one full round above the quota, and the server enforces
   the quota with a deterministic epoch-LRU trim at round boundaries —
   mid-round eviction order would depend on the domain schedule. *)
let internal_capacity cfg q = q.max_entries + cfg.batch_size + 8

let create ?(chaos = Chaos.disabled) cfg =
  if cfg.tenants = [] then invalid_arg "Server.create: no tenants";
  if cfg.queue_capacity < 1 then invalid_arg "Server.create: queue_capacity must be >= 1";
  if cfg.batch_size < 1 then invalid_arg "Server.create: batch_size must be >= 1";
  let platform = Attestation.Platform.create ~seed:cfg.seed in
  let tenants_tbl = Hashtbl.create 8 in
  List.iter
    (fun tc ->
      if Hashtbl.mem tenants_tbl tc.t_name then
        invalid_arg ("Server.create: duplicate tenant " ^ tc.t_name);
      Hashtbl.replace tenants_tbl tc.t_name
        {
          tc;
          cache = Verifier.Cache.create ~capacity:(internal_capacity cfg tc.t_quota) ();
          t_offered = 0;
          t_admitted = 0;
          t_shed = 0;
          t_trim_evictions = 0;
          t_exits = Hashtbl.create 8;
        })
    cfg.tenants;
  let persist =
    Option.map
      (fun dir ->
        Persist.create ~segment_entries:cfg.segment_entries ~dir ~platform ())
      cfg.state_dir
  in
  let t =
    {
      cfg;
      platform;
      tenants_tbl;
      audit = Audit.Log.create ~platform ();
      persist;
      chaos;
      recovery_ = None;
      preloaded = 0;
      q_front = [];
      q_back = [];
      q_len = 0;
      round_ = 0;
      killed_ = false;
      offered = 0;
      admitted = 0;
      shed = 0;
      rejected = 0;
      exits = Hashtbl.create 8;
      wait_rounds = Hdr.create ();
      lat = Hashtbl.create 16;
      results_rev = [];
      persist_failures = 0;
    }
  in
  (match persist with
  | None -> ()
  | Some p ->
    (* recovery: verify the sealed cache segment by segment; whatever
       fails integrity is discarded (cold re-verification), whatever
       survives goes warm into its tenant's namespace *)
    let entries, report = Persist.load ~chaos p in
    List.iter
      (fun (e : Persist.entry) ->
        match tenant_state t e.Persist.tenant with
        | None -> ()  (* entry for a tenant this server no longer hosts *)
        | Some _ when e.Persist.mode <> Verifier.mode_label cfg.verification ->
          ()  (* verdict rendered under another verification mode: its key
                 could never be looked up here — cold re-verification *)
        | Some ts ->
          Verifier.Cache.set_epoch ts.cache 0;
          Verifier.Cache.preload ts.cache ~key:e.Persist.key e.Persist.verdict;
          t.preloaded <- t.preloaded + 1)
      entries;
    Hashtbl.iter
      (fun _ ts ->
        ignore (Verifier.Cache.trim ts.cache ~capacity:ts.tc.t_quota.max_entries))
      t.tenants_tbl;
    t.recovery_ <- Some report);
  t

let config t = t.cfg
let round t = t.round_
let killed t = t.killed_
let recovery t = t.recovery_
let results t = List.rev t.results_rev
let audit_doc t = Audit.Log.seal t.audit

let offer t ~tenant job =
  t.offered <- t.offered + 1;
  match tenant_state t tenant with
  | None ->
    t.rejected <- t.rejected + 1;
    `Rejected Unknown_tenant
  | Some ts ->
    ts.t_offered <- ts.t_offered + 1;
    if t.q_len >= t.cfg.queue_capacity then begin
      t.shed <- t.shed + 1;
      ts.t_shed <- ts.t_shed + 1;
      `Rejected (Overloaded { retry_after_rounds = (t.q_len / t.cfg.batch_size) + 1 })
    end
    else begin
      t.q_back <- (tenant, job, t.round_) :: t.q_back;
      t.q_len <- t.q_len + 1;
      `Queued
    end

let merge_latencies t (batch : Gateway.batch) =
  List.iter
    (fun (name, h) ->
      match Hashtbl.find_opt t.lat name with
      | Some into -> Hdr.merge_into ~into h
      | None ->
        let into = Hdr.create ~sub_bits:(Hdr.sub_bits h) () in
        Hdr.merge_into ~into h;
        Hashtbl.add t.lat name into)
    batch.Gateway.latencies

let persist_now t ~round =
  match t.persist with
  | None -> ()
  | Some p ->
    let entries =
      List.concat_map
        (fun tc ->
          match tenant_state t tc.t_name with
          | None -> []
          | Some ts ->
            List.map
              (fun (key, verdict) ->
                {
                  Persist.tenant = tc.t_name;
                  key;
                  mode = Verifier.mode_label t.cfg.verification;
                  verdict;
                })
              (Verifier.Cache.export ts.cache))
        t.cfg.tenants
    in
    (match Persist.save ~chaos:t.chaos ~round p entries with
    | Ok () -> ()
    | Error _ -> t.persist_failures <- t.persist_failures + 1)

let run_round t =
  if t.killed_ then invalid_arg "Server.run_round: server was killed";
  let r = t.round_ in
  Hashtbl.iter (fun _ ts -> Verifier.Cache.set_epoch ts.cache (r + 1)) t.tenants_tbl;
  (* Deterministic admission: walk the queue in arrival order, take until
     the batch is full, skip (don't block behind) requests whose tenant
     is at its in-flight quota. *)
  let items = t.q_front @ List.rev t.q_back in
  t.q_front <- [];
  t.q_back <- [];
  let taken : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let sel = ref [] and kept = ref [] and total = ref 0 in
  List.iter
    (fun ((tenant, _, _) as item) ->
      let cnt = Option.value ~default:0 (Hashtbl.find_opt taken tenant) in
      let cap =
        match tenant_state t tenant with
        | Some ts -> ts.tc.t_quota.max_inflight
        | None -> 0
      in
      if !total < t.cfg.batch_size && cnt < cap then begin
        Hashtbl.replace taken tenant (cnt + 1);
        incr total;
        sel := item :: !sel
      end
      else kept := item :: !kept)
    items;
  let sel = List.rev !sel in
  t.q_front <- List.rev !kept;
  t.q_len <- List.length t.q_front;
  (* per-tenant sub-batches, in config order *)
  List.iter
    (fun tc ->
      let mine = List.filter (fun (tenant, _, _) -> tenant = tc.t_name) sel in
      if mine <> [] then
        match tenant_state t tc.t_name with
        | None -> ()
        | Some ts ->
          let jobs = List.map (fun (_, j, _) -> j) mine in
          let interp =
            Option.map
              (fun f -> { Interp.default_config with Interp.fuel = Some f })
              tc.t_quota.fuel
          in
          let batch =
            Gateway.run_batch ~jobs:t.cfg.workers ~policies:t.cfg.policies ~ssa_q:t.cfg.ssa_q
              ~verification:t.cfg.verification ?layout:t.cfg.layout ~cache:ts.cache ?interp
              ~resilience_config:t.cfg.resilience ~audit:t.audit jobs
          in
          merge_latencies t batch;
          List.iter2
            (fun (_, _, r0) (res : Gateway.session_result) ->
              Hdr.observe t.wait_rounds (r - r0);
              ts.t_admitted <- ts.t_admitted + 1;
              t.admitted <- t.admitted + 1;
              bump t.exits res.Gateway.exit_code 1;
              bump ts.t_exits res.Gateway.exit_code 1;
              t.results_rev <- (res.Gateway.label, res.Gateway.exit_code) :: t.results_rev)
            mine batch.Gateway.results)
    t.cfg.tenants;
  if Chaos.kill_point t.chaos ~round:r then begin
    (* abrupt death: no trim, no seal — the queue and this round's
       warmness die with the process image *)
    t.killed_ <- true;
    t.round_ <- r + 1;
    `Killed
  end
  else begin
    Hashtbl.iter
      (fun _ ts ->
        ts.t_trim_evictions <-
          ts.t_trim_evictions + Verifier.Cache.trim ts.cache ~capacity:ts.tc.t_quota.max_entries)
      t.tenants_tbl;
    t.round_ <- r + 1;
    if
      Option.is_some t.persist
      && t.cfg.persist_every > 0
      && (r + 1) mod t.cfg.persist_every = 0
    then persist_now t ~round:r;
    `Ok
  end

let rec drain t =
  if t.q_len > 0 && not t.killed_ then
    match run_round t with `Ok -> drain t | `Killed -> ()

let shutdown t =
  drain t;
  if not t.killed_ then persist_now t ~round:t.round_

(* ------------------------------------------------------------------ *)
(* Report *)

let exits_to_json tbl =
  Hashtbl.fold (fun code n acc -> (code, n) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun (code, n) -> (string_of_int code, Json.Int n))
  |> fun l -> Json.Obj l

let cache_stats_json q (s : Verifier.Cache.stats) =
  Json.Obj
    [
      ("hits", Json.Int s.Verifier.Cache.hits);
      ("misses", Json.Int s.Verifier.Cache.misses);
      ("evictions", Json.Int s.Verifier.Cache.evictions);
      ("entries", Json.Int s.Verifier.Cache.entries);
      ("quota_max_entries", Json.Int q.max_entries);
    ]

let tenant_json t tc =
  match tenant_state t tc.t_name with
  | None -> Json.Null
  | Some ts ->
    Json.Obj
      [
        ("name", Json.Str tc.t_name);
        ("offered", Json.Int ts.t_offered);
        ("admitted", Json.Int ts.t_admitted);
        ("shed", Json.Int ts.t_shed);
        ( "quota",
          Json.Obj
            [
              ("max_entries", Json.Int tc.t_quota.max_entries);
              ("max_inflight", Json.Int tc.t_quota.max_inflight);
              ( "fuel",
                match tc.t_quota.fuel with None -> Json.Null | Some f -> Json.Int f );
            ] );
        ("cache", cache_stats_json tc.t_quota (Verifier.Cache.stats ts.cache));
        ("trim_evictions", Json.Int ts.t_trim_evictions);
        ("exits", exits_to_json ts.t_exits);
      ]

let warm_totals t =
  Hashtbl.fold
    (fun _ ts (h, m) ->
      let s = Verifier.Cache.stats ts.cache in
      (h + s.Verifier.Cache.hits, m + s.Verifier.Cache.misses))
    t.tenants_tbl (0, 0)

let doc t =
  let hits, misses = warm_totals t in
  let lat_json =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) t.lat []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, h) -> (name, Hdr.to_json h))
  in
  Json.Obj
    [
      ("schema", Json.Str "deflection-server/1");
      ( "config",
        Json.Obj
          [
            ("policies", Json.Str (Policy.Set.label t.cfg.policies));
            ("ssa_q", Json.Int t.cfg.ssa_q);
            ("tenants", Json.Int (List.length t.cfg.tenants));
            ("queue_capacity", Json.Int t.cfg.queue_capacity);
            ("batch_size", Json.Int t.cfg.batch_size);
            ("persist_every", Json.Int t.cfg.persist_every);
            ("seed", Json.Str (Int64.to_string t.cfg.seed));
          ] );
      ("rounds", Json.Int t.round_);
      ("killed", Json.Bool t.killed_);
      ("offered", Json.Int t.offered);
      ("admitted", Json.Int t.admitted);
      ("shed", Json.Int t.shed);
      ("rejected", Json.Int t.rejected);
      ("queue_depth", Json.Int t.q_len);
      ("warm_hits", Json.Int hits);
      ("cold_misses", Json.Int misses);
      ( "warm_hit_ratio",
        Json.Float (if hits + misses = 0 then 0.0 else float_of_int hits /. float_of_int (hits + misses)) );
      ("preloaded", Json.Int t.preloaded);
      ("persist_failures", Json.Int t.persist_failures);
      ("queue_wait_rounds", Hdr.to_json t.wait_rounds);
      ("exits", exits_to_json t.exits);
      ( "recovery",
        match t.recovery_ with None -> Json.Null | Some r -> Persist.load_report_to_json r );
      ("tenants", Json.List (List.map (tenant_json t) t.cfg.tenants));
      ( "timing",
        Json.Obj [ ("workers", Json.Int t.cfg.workers); ("latency_ns", Json.Obj lat_json) ] );
    ]

(* ------------------------------------------------------------------ *)
(* Open-loop load generation *)

module Load = struct
  let ok_source v = Printf.sprintf "int main() { print_int(%d); return 0; }" (100 + v)
  let abort_source = "int buf[4];\nint main() { buf[2000000] = 7; return 0; }"

  (* Round [round]'s arrivals of an [offered]-over-[rounds] schedule:
     a pure function of (config.seed, round), so a restarted server
     replaying the run sees byte-identical requests. *)
  let arrivals cfg ~offered ~rounds ~round =
    if rounds < 1 then invalid_arg "Load.arrivals: rounds must be >= 1";
    let rng =
      Prng.create
        (Prng.derive
           (Prng.derive cfg.seed ~label:"server-load")
           ~label:(string_of_int round))
    in
    let n = (offered / rounds) + if round < offered mod rounds then 1 else 0 in
    let tenants = Array.of_list cfg.tenants in
    List.init n (fun i ->
        let seed = Int64.of_int ((round * 1_000_000) + i) in
        if i mod 13 = 7 then
          (* a slice of traffic names a tenant this server doesn't host *)
          ("ghost", Gateway.job ~label:(Printf.sprintf "ghost-r%d-i%d-ok0" round i) ~seed (ok_source 0))
        else begin
          let tc = tenants.((round + i) mod Array.length tenants) in
          let label kind = Printf.sprintf "%s-r%d-i%d-%s" tc.t_name round i kind in
          match tc.t_quota.fuel with
          | Some _ ->
            (* fuel-capped tenant: compliant code its budget can't finish *)
            let v = Prng.int rng (tc.t_quota.max_entries + 2) in
            (tc.t_name, Gateway.job ~label:(label (Printf.sprintf "fuel%d" v)) ~seed (ok_source v))
          | None -> (
            match Prng.int rng 10 with
            | 8 ->
              (tc.t_name, Gateway.job ~label:(label "abort") ~seed abort_source)
            | 9 ->
              (* annotated for P1 only: the gateway's richer set rejects it *)
              ( tc.t_name,
                Gateway.job ~compile_policies:Policy.Set.p1 ~label:(label "reject") ~seed
                  (ok_source 0) )
            | _ ->
              (* more distinct compliant binaries than the entry quota,
                 so quota trims actually happen *)
              let v = Prng.int rng (tc.t_quota.max_entries + 2) in
              (tc.t_name, Gateway.job ~label:(label (Printf.sprintf "ok%d" v)) ~seed (ok_source v)))
        end)

  let expected_exit cfg label =
    let tenant =
      match String.index_opt label '-' with
      | Some i -> String.sub label 0 i
      | None -> label
    in
    match List.find_opt (fun tc -> tc.t_name = tenant) cfg.tenants with
    | None -> None
    | Some tc ->
      let kind =
        match String.rindex_opt label '-' with
        | Some i -> String.sub label (i + 1) (String.length label - i - 1)
        | None -> ""
      in
      let has_prefix p =
        String.length kind >= String.length p && String.sub kind 0 (String.length p) = p
      in
      if has_prefix "reject" then Some 2  (* refused before execution, fuel or not *)
      else if Option.is_some tc.t_quota.fuel then Some 11
      else if has_prefix "abort" then Some 9
      else if has_prefix "ok" || has_prefix "fuel" || has_prefix "storm" then Some 0
      else None
end

let offer_load t ~offered ~rounds =
  let r = t.round_ in
  (match Chaos.queue_storm t.chaos ~round:r with
  | None -> ()
  | Some burst ->
    let tc = List.hd t.cfg.tenants in
    for k = 0 to burst - 1 do
      ignore
        (offer t ~tenant:tc.t_name
           (Gateway.job
              ~label:(Printf.sprintf "%s-r%d-i%d-storm" tc.t_name r k)
              ~seed:(Int64.of_int ((r * 1_000_000) + 900_000 + k))
              (Load.ok_source 0)))
    done);
  List.iter
    (fun (tenant, job) -> ignore (offer t ~tenant job))
    (Load.arrivals t.cfg ~offered ~rounds ~round:r)

let serve_load t ~offered ~rounds ~kill_after =
  let rec go r =
    if r < rounds && not t.killed_ then begin
      offer_load t ~offered ~rounds;
      match run_round t with
      | `Killed -> ()
      | `Ok ->
        (match kill_after with
        | Some k when r >= k ->
          (* scripted SIGKILL: die after this round's sessions ran, with
             no drain and no final seal — only periodic seals survive *)
          Stdlib.exit 137
        | _ -> ());
        go (r + 1)
    end
  in
  go t.round_;
  shutdown t;
  if t.killed_ then `Killed else `Done

(* ------------------------------------------------------------------ *)
(* Chaos campaign *)

type campaign_case = {
  c_seed : int64;
  c_plan : Chaos.plan;
  c_killed : int;
  c_admitted : int;
  c_shed : int;
  c_recovery_discarded : int;
  c_violations : string list;
}

type campaign = {
  base_seed : int64;
  cases : campaign_case list;
  total_violations : int;
  fired : (string * int) list;
}

let campaign_quota = { max_entries = 4; max_inflight = 4; fuel = None }

let campaign_config ~dir ~seed =
  {
    default_config with
    tenants =
      [
        { t_name = "t0"; t_quota = campaign_quota };
        { t_name = "t1"; t_quota = campaign_quota };
        { t_name = "t2"; t_quota = { campaign_quota with max_entries = 3; max_inflight = 2 } };
        { t_name = "t3"; t_quota = { campaign_quota with fuel = Some 5 } };
      ];
    queue_capacity = 16;
    batch_size = 6;
    workers = 2;
    seed;
    state_dir = Some dir;
    persist_every = 1;
    segment_entries = 4;
  }

let clean_state_dir dir =
  List.iter
    (fun f ->
      let p = Filename.concat dir f in
      if Sys.file_exists p then Sys.remove p)
    [ "verdict-cache.json"; "verdict-cache.json.1"; "verdict-cache.json.tmp" ]

let oracle_violations cfg server =
  List.filter_map
    (fun (label, code) ->
      match Load.expected_exit cfg label with
      | Some expected when expected <> code ->
        Some (Printf.sprintf "%s: expected exit %d, got %d" label expected code)
      | Some _ -> None
      | None -> Some (Printf.sprintf "%s: admitted label outside the load schedule" label))
    (results server)

let run_case ~state_root ~offered i seed =
  let plan = Chaos.generate_server ~seed in
  let dir = Filename.concat state_root (Printf.sprintf "seed-%d" i) in
  (if not (Sys.file_exists dir) then
     try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  clean_state_dir dir;
  let cfg = campaign_config ~dir ~seed in
  let engine = Chaos.of_plan plan in
  let rounds = 8 and restart_at = 4 in
  let violations = ref [] in
  let n_killed = ref 0 and n_admitted = ref 0 and n_shed = ref 0 and discarded = ref 0 in
  let note_recovery s =
    match recovery s with
    | None -> ()
    | Some r ->
      discarded := !discarded + r.Persist.segments_discarded;
      if r.Persist.found && r.Persist.malformed then incr discarded
  in
  let fold_run s =
    violations := !violations @ oracle_violations cfg s;
    n_admitted := !n_admitted + List.length (results s);
    let d = doc s in
    (match Json.member "shed" d with Some (Json.Int n) -> n_shed := !n_shed + n | _ -> ())
  in
  (* incarnation 1: serve the first half, then stop without a graceful
     seal — whatever the periodic seals left on disk (possibly torn) is
     what recovery gets *)
  let inc1 = create ~chaos:engine cfg in
  (try
     for _ = 0 to restart_at - 1 do
       if killed inc1 then raise Exit;
       offer_load inc1 ~offered ~rounds;
       match run_round inc1 with `Killed -> raise Exit | `Ok -> ()
     done
   with Exit -> ());
  if killed inc1 then incr n_killed;
  fold_run inc1;
  (* restart against the same state dir until a full replay completes;
     kill points are one-shot, so this converges fast *)
  let rec full n =
    if n > 4 then begin
      violations := "restart loop did not converge" :: !violations;
      None
    end
    else begin
      let s = create ~chaos:engine cfg in
      note_recovery s;
      match serve_load s ~offered ~rounds ~kill_after:None with
      | `Killed ->
        incr n_killed;
        fold_run s;
        full (n + 1)
      | `Done -> Some s
    end
  in
  (match full 1 with
  | None -> ()
  | Some final ->
    fold_run final;
    (* the audit chain of the surviving incarnation must verify *)
    (match Audit.verify ~platform:final.platform (audit_doc final) with
    | Ok _ -> ()
    | Error tamper ->
      violations :=
        Printf.sprintf "audit verify failed: %s" (Audit.tamper_to_string tamper) :: !violations);
    (* and a clean reload of the final sealed state must be whole *)
    let p = Persist.create ~segment_entries:cfg.segment_entries ~dir ~platform:final.platform () in
    let _, report = Persist.load p in
    if
      report.Persist.malformed || report.Persist.truncated
      || report.Persist.segments_discarded > 0
    then violations := "final sealed state did not reload clean" :: !violations);
  ( {
      c_seed = seed;
      c_plan = plan;
      c_killed = !n_killed;
      c_admitted = !n_admitted;
      c_shed = !n_shed;
      c_recovery_discarded = !discarded;
      c_violations = !violations;
    },
    Chaos.fired engine )

let chaos_campaign ?(base_seed = 1000L) ?(seeds = 4) ?(offered = 48) ~state_root () =
  (if not (Sys.file_exists state_root) then
     try Sys.mkdir state_root 0o755 with Sys_error _ -> ());
  let fired_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let cases =
    List.init seeds (fun i ->
        let seed = Int64.add base_seed (Int64.of_int i) in
        let case, fired = run_case ~state_root ~offered i seed in
        List.iter (fun (site, n) -> bump fired_tbl site n) fired;
        case)
  in
  {
    base_seed;
    cases;
    total_violations = List.fold_left (fun acc c -> acc + List.length c.c_violations) 0 cases;
    fired =
      List.map
        (fun s ->
          let l = Chaos.site_label s in
          (l, Option.value ~default:0 (Hashtbl.find_opt fired_tbl l)))
        Chaos.all_sites;
  }

let campaign_to_json c =
  Json.Obj
    [
      ("schema", Json.Str "deflection-server-chaos/1");
      ("base_seed", Json.Str (Int64.to_string c.base_seed));
      ("seeds", Json.Int (List.length c.cases));
      ("violations", Json.Int c.total_violations);
      ("fired", Json.Obj (List.map (fun (s, n) -> (s, Json.Int n)) c.fired));
      ( "cases",
        Json.List
          (List.map
             (fun case ->
               Json.Obj
                 [
                   ("seed", Json.Str (Int64.to_string case.c_seed));
                   ("plan", Chaos.plan_to_json case.c_plan);
                   ("killed", Json.Int case.c_killed);
                   ("admitted", Json.Int case.c_admitted);
                   ("shed", Json.Int case.c_shed);
                   ("recovery_discarded", Json.Int case.c_recovery_discarded);
                   ("violations", Json.List (List.map (fun v -> Json.Str v) case.c_violations));
                 ])
             c.cases) );
    ]
