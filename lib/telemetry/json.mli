(** Minimal hand-rolled JSON: construction, serialization and parsing.

    No external dependencies — this is the wire format of the telemetry
    exporters, the benchmark harness' machine-readable results
    ([bench/results/latest.json]) and the [json_check] smoke gate. The
    parser accepts exactly the JSON this module emits (plus standard
    escapes), which is all the round-trip tests need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite floats serialize as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] uses 2-space indentation. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing garbage is an
    error). *)

val member : string -> t -> t option
(** [member key json] looks up [key] when [json] is an [Obj]. *)
