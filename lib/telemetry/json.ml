type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else begin
    (* shortest representation that survives a round-trip *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* keep a decimal point so whole floats stay floats when reparsed *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"
  end

let rec write b ~pretty ~level t =
  let indent n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char b '\n' in
  match t with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s ->
    Buffer.add_char b '"';
    escape_into b s;
    Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    newline ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        indent (level + 1);
        write b ~pretty ~level:(level + 1) item)
      items;
    newline ();
    indent level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    newline ();
    List.iteri
      (fun i (k, v) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          newline ()
        end;
        indent (level + 1);
        Buffer.add_char b '"';
        escape_into b k;
        Buffer.add_string b (if pretty then "\": " else "\":");
        write b ~pretty ~level:(level + 1) v)
      fields;
    newline ();
    indent level;
    Buffer.add_char b '}'

let to_string ?(pretty = false) t =
  let b = Buffer.create 1024 in
  write b ~pretty ~level:0 t;
  Buffer.contents b

let to_channel ?pretty oc t =
  output_string oc (to_string ?pretty t);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("invalid literal, expected " ^ word)
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents b
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          let cp =
            (* combine a surrogate pair when one follows *)
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              else fail "invalid low surrogate"
            end
            else if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD
            else cp
          in
          add_utf8 b cp
        | Some c -> fail (Printf.sprintf "invalid escape \\%C" c)
        | None -> fail "unterminated escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let body = String.sub s start (!pos - start) in
    if body = "" then fail "expected a value";
    match int_of_string_opt body with
    | Some v -> Int v
    | None ->
      (match float_of_string_opt body with
      | Some f -> Float f
      | None -> fail ("malformed number " ^ body))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) -> Error (Printf.sprintf "%s at byte %d" msg at)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
