(** Bench-history regression comparator.

    Compares a current [deflection-bench/1] document against one or more
    baseline runs (the committed baseline, or the N most recent entries
    of [bench/results/history/]) over a fixed list of {e tracked}
    wall-clock metrics. Baselines are reduced metric-wise by median — a
    median-of-N baseline absorbs one outlier run — and each metric gets
    an explicit [better] / [worse] / [neutral] / [missing] verdict under
    its own relative noise tolerance. The verdict document
    ([deflection-benchdiff/1]) is what [json_check --regress] gates on:
    any [worse] metric fails the gate.

    Deterministic virtual-cycle results (overhead ratios, instruction
    counts) are pinned by tests and need no tolerance band; this module
    exists for the wall-clock throughput metrics that real machines
    jitter. *)

type direction = Higher_better | Lower_better

type metric = {
  m_name : string;  (** e.g. ["gateway.warm_over_cold_x"] *)
  m_path : string list;  (** object path into the bench document *)
  m_direction : direction;
  m_tolerance_pct : float;
      (** relative noise band: a delta within ±tolerance is [neutral] *)
}

val tracked : metric list
(** The gated metrics: gateway warm-over-cold speedup and cold session
    throughput, verifier instructions/second (fuzz section), and nBench
    interpreter instructions/second (table2 section). *)

type verdict = Better | Worse | Neutral | Missing

val verdict_label : verdict -> string
(** ["better"] / ["worse"] / ["neutral"] / ["missing"]. *)

type comparison = {
  c_metric : metric;
  c_baseline : float option;  (** median across the baseline runs *)
  c_current : float option;
  c_delta_pct : float option;  (** (current - baseline) / baseline * 100 *)
  c_verdict : verdict;
}

type report = {
  comparisons : comparison list;
  regressions : int;  (** number of [Worse] verdicts *)
  improvements : int;  (** number of [Better] verdicts *)
  ok : bool;  (** [regressions = 0] *)
}

val number_at : Json.t -> string list -> float option
(** Follow an object path and read a numeric leaf. *)

val median : float list -> float
(** 0.0 on the empty list; the mean of the middle pair on even lengths. *)

val compare_docs : baseline:Json.t list -> current:Json.t -> report
(** Compare the current bench document against the metric-wise median of
    the baseline documents. A metric absent on either side (e.g. a quick
    run that skipped the section) is [Missing] and never fails the gate. *)

val report_to_json :
  baseline_files:string list -> current_file:string -> report -> Json.t
(** The [deflection-benchdiff/1] verdict document. *)
