type event = {
  seq : int;
  ts_ns : int;
  name : string;
  phase : [ `Begin | `End | `Instant ];
  args : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Sinks *)

type ring = {
  capacity : int;
  buf : event option array;
  mutable next : int;  (* next write slot *)
  mutable stored : int;  (* total events ever written *)
}

(* A user-supplied consumer. Observability must never decide outcomes:
   the first exception the callback raises poisons the sink (every later
   event is counted as dropped, the callback is never called again) and
   nothing propagates to the instrumented code path. *)
type custom = {
  fn : event -> unit;
  mutable failed : bool;
  mutable delivered : int;
  mutable custom_dropped : int;
}

type sink = Noop | Ring of ring | Custom of custom

module Sink = struct
  type t = sink

  let noop = Noop

  let ring ~capacity =
    if capacity <= 0 then invalid_arg "Telemetry.Sink.ring: capacity must be positive";
    Ring { capacity; buf = Array.make capacity None; next = 0; stored = 0 }

  let custom fn = Custom { fn; failed = false; delivered = 0; custom_dropped = 0 }
end

(* ------------------------------------------------------------------ *)
(* Counters and histograms *)

type counter = { cname : string; mutable count : int }

let hist_buckets = 63

type histogram = {
  hname : string;
  buckets : int array;
  mutable h_sum : int;
  mutable h_count : int;
  mutable h_min : int;
  mutable h_max : int;
}

type span_info = {
  sname : string;
  start_ns : int;
  stop_ns : int;
  depth : int;
  start_seq : int;
  sid : int;
  parent : int;
  lane : int;
}

type t = {
  is_enabled : bool;
  clock : unit -> int;
  mutable sink : sink;
  mutable seq : int;
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  mutable depth : int;
  mutable spans_rev : span_info list;
  mutable span_count : int;
  span_limit : int;
  mutable next_sid : int;
  mutable open_sids : int list;  (* innermost open span first *)
}

let default_clock =
  let last = ref 0 in
  fun () ->
    let now = int_of_float (Unix.gettimeofday () *. 1e9) in
    if now > !last then last := now;
    !last

let create ?(clock = default_clock) ?(sink = Noop) ?(span_limit = 16384) () =
  {
    is_enabled = true;
    clock;
    sink;
    seq = 0;
    counters = Hashtbl.create 64;
    histograms = Hashtbl.create 16;
    depth = 0;
    spans_rev = [];
    span_count = 0;
    span_limit;
    next_sid = 1;
    open_sids = [];
  }

let disabled =
  {
    is_enabled = false;
    clock = (fun () -> 0);
    sink = Noop;
    seq = 0;
    counters = Hashtbl.create 1;
    histograms = Hashtbl.create 1;
    depth = 0;
    spans_rev = [];
    span_count = 0;
    span_limit = 0;
    next_sid = 1;
    open_sids = [];
  }

let enabled t = t.is_enabled
let now_ns t = t.clock ()
let tracing t = t.is_enabled && t.sink <> Noop
let set_sink t sink = if t.is_enabled then t.sink <- sink

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { cname = name; count = 0 } in
    Hashtbl.replace t.counters name c;
    c

let add c n = c.count <- c.count + n
let incr c = c.count <- c.count + 1
let counter_value c = c.count
let count t name n = if t.is_enabled then add (counter t name) n

let counter_total t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.count | None -> 0

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        hname = name;
        buckets = Array.make hist_buckets 0;
        h_sum = 0;
        h_count = 0;
        h_min = max_int;
        h_max = min_int;
      }
    in
    Hashtbl.replace t.histograms name h;
    h

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* bucket i (i >= 1) holds (2^(i-1), 2^i] *)
    let rec go i bound = if v <= bound || i = hist_buckets - 1 then i else go (i + 1) (bound * 2) in
    go 1 2
  end

let observe h v =
  h.buckets.(bucket_index v) <- h.buckets.(bucket_index v) + 1;
  h.h_sum <- h.h_sum + v;
  h.h_count <- h.h_count + 1;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_mean : float;
  h_buckets : (int * int) list;
}

let hist_snapshot h : hist_summary =
  let buckets = ref [] in
  for i = hist_buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then begin
      let bound = if i = 0 then 1 else 1 lsl i in
      buckets := (bound, h.buckets.(i)) :: !buckets
    end
  done;
  {
    h_count = h.h_count;
    h_sum = h.h_sum;
    h_min = (if h.h_count = 0 then 0 else h.h_min);
    h_max = (if h.h_count = 0 then 0 else h.h_max);
    h_mean = (if h.h_count = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_count);
    h_buckets = !buckets;
  }

(* ------------------------------------------------------------------ *)
(* Events and spans *)

let push_event t phase name args =
  match t.sink with
  | Noop -> ()
  | Ring r ->
    let seq = t.seq in
    t.seq <- seq + 1;
    r.buf.(r.next) <- Some { seq; ts_ns = t.clock (); name; phase; args };
    r.next <- (r.next + 1) mod r.capacity;
    r.stored <- r.stored + 1
  | Custom c ->
    let seq = t.seq in
    t.seq <- seq + 1;
    if c.failed then c.custom_dropped <- c.custom_dropped + 1
    else begin
      match c.fn { seq; ts_ns = t.clock (); name; phase; args } with
      | () -> c.delivered <- c.delivered + 1
      | exception _ ->
        c.failed <- true;
        c.custom_dropped <- c.custom_dropped + 1
    end

let event t ?(args = []) name = if t.is_enabled then push_event t `Instant name args

let span t name f =
  if not t.is_enabled then f ()
  else begin
    let depth = t.depth in
    let start_seq = t.seq in
    t.seq <- start_seq + 1;
    t.depth <- depth + 1;
    let sid = t.next_sid in
    t.next_sid <- sid + 1;
    let parent = match t.open_sids with p :: _ -> p | [] -> 0 in
    t.open_sids <- sid :: t.open_sids;
    let start_ns = t.clock () in
    push_event t `Begin name [];
    let finish () =
      let stop_ns = t.clock () in
      push_event t `End name [];
      t.depth <- depth;
      (match t.open_sids with _ :: rest -> t.open_sids <- rest | [] -> ());
      if t.span_count < t.span_limit then begin
        t.span_count <- t.span_count + 1;
        t.spans_rev <-
          { sname = name; start_ns; stop_ns; depth; start_seq; sid; parent; lane = 0 }
          :: t.spans_rev
      end
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type snapshot = {
  spans : span_info list;
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
  events : event list;
  dropped_events : int;
}

let sink_failed t = match t.sink with Custom c -> c.failed | Noop | Ring _ -> false

let sink_events = function
  | Noop -> ([], 0)
  | Custom c -> ([], c.custom_dropped)
  | Ring r ->
    let dropped = max 0 (r.stored - r.capacity) in
    let len = min r.stored r.capacity in
    let first = if r.stored <= r.capacity then 0 else r.next in
    let events = ref [] in
    for i = len - 1 downto 0 do
      match r.buf.((first + i) mod r.capacity) with
      | Some e -> events := e :: !events
      | None -> ()
    done;
    (!events, dropped)

let by_name (a, _) (b, _) = compare a b

let snapshot t =
  let events, dropped_events = sink_events t.sink in
  {
    spans =
      List.sort
        (fun a b -> compare a.start_seq b.start_seq)
        t.spans_rev;
    counters =
      Hashtbl.fold (fun name c acc -> (name, c.count) :: acc) t.counters []
      |> List.sort by_name;
    histograms =
      Hashtbl.fold (fun name h acc -> (name, hist_snapshot h) :: acc) t.histograms []
      |> List.sort by_name;
    events;
    dropped_events;
  }

(* ------------------------------------------------------------------ *)
(* Grafting: merge per-worker snapshots under one root span so the batch
   exports a single causal tree instead of K disjoint registries. *)

let merge_hist_summary (a : hist_summary) (b : hist_summary) : hist_summary =
  if a.h_count = 0 then b
  else if b.h_count = 0 then a
  else begin
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (le, n) -> Hashtbl.replace tbl le (n + Option.value ~default:0 (Hashtbl.find_opt tbl le)))
      (a.h_buckets @ b.h_buckets);
    let buckets =
      Hashtbl.fold (fun le n acc -> (le, n) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let count = a.h_count + b.h_count in
    let sum = a.h_sum + b.h_sum in
    {
      h_count = count;
      h_sum = sum;
      h_min = min a.h_min b.h_min;
      h_max = max a.h_max b.h_max;
      h_mean = float_of_int sum /. float_of_int count;
      h_buckets = buckets;
    }
  end

let graft ~(root : snapshot) ~(lanes : (string * snapshot list) list) : snapshot =
  (* fresh global ids: root spans first, then each lane's snapshots in
     order — parent links are remapped through the same table, so every
     grafted span still reaches the root batch span *)
  let next_sid = ref 0 in
  let fresh () = Stdlib.incr next_sid; !next_sid in
  let next_seq = ref 0 in
  let seq () = let s = !next_seq in Stdlib.incr next_seq; s in
  let remap lane parent_of (spans : span_info list) =
    (* one table per child snapshot: sids are only unique within it *)
    let map = Hashtbl.create 64 in
    List.map
      (fun s ->
        let sid = fresh () in
        Hashtbl.replace map s.sid sid;
        let parent =
          if s.parent <> 0 then Option.value ~default:(parent_of s) (Hashtbl.find_opt map s.parent)
          else parent_of s
        in
        { s with sid; parent; lane; start_seq = seq () })
      spans
  in
  let root_spans = remap 0 (fun _ -> 0) root.spans in
  let root_sid =
    match List.find_opt (fun (s : span_info) -> s.depth = 0) root_spans with
    | Some s -> s.sid
    | None -> 0
  in
  let root_depth = 1 in
  let grafted =
    List.concat
      (List.mapi
         (fun i (label, snaps) ->
           let lane = i + 1 in
           (* the lane wrapper is allocated first so it precedes its
              children in the global sequence *)
           let lane_sid = fresh () in
           let lane_seq = seq () in
           let children =
             List.concat_map
               (fun (snap : snapshot) ->
                 remap lane (fun _ -> lane_sid) snap.spans
                 |> List.map (fun (s : span_info) -> { s with depth = s.depth + root_depth + 1 }))
               snaps
           in
           let start_ns =
             List.fold_left (fun acc s -> min acc s.start_ns) max_int children
           in
           let stop_ns = List.fold_left (fun acc s -> max acc s.stop_ns) 0 children in
           let lane_span =
             {
               sname = label;
               start_ns = (if children = [] then 0 else start_ns);
               stop_ns;
               depth = root_depth;
               start_seq = lane_seq;
               sid = lane_sid;
               parent = root_sid;
               lane;
             }
           in
           lane_span :: children)
         lanes)
  in
  let all_snaps = root :: List.concat_map snd lanes in
  let sum_assoc merge snaps =
    let tbl = Hashtbl.create 64 in
    List.iter
      (List.iter (fun (k, v) ->
           Hashtbl.replace tbl k
             (match Hashtbl.find_opt tbl k with None -> v | Some prev -> merge prev v)))
      snaps;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort by_name
  in
  let events =
    List.concat_map (fun (s : snapshot) -> s.events) all_snaps
    |> List.map (fun (e : event) -> { e with seq = seq () })
  in
  {
    spans = root_spans @ grafted;
    counters = sum_assoc ( + ) (List.map (fun s -> s.counters) all_snaps);
    histograms = sum_assoc merge_hist_summary (List.map (fun s -> s.histograms) all_snaps);
    events;
    dropped_events = List.fold_left (fun acc s -> acc + s.dropped_events) 0 all_snaps;
  }

let find_span snap name = List.find_opt (fun s -> s.sname = name) snap.spans

let span_names snap =
  List.fold_left
    (fun acc s -> if List.mem s.sname acc then acc else s.sname :: acc)
    [] snap.spans
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Exporters *)

let ms_of_ns ns = float_of_int ns /. 1e6

let pp_snapshot fmt snap =
  Format.fprintf fmt "@[<v>";
  if snap.spans <> [] then begin
    Format.fprintf fmt "spans (ms):@,";
    List.iter
      (fun (s : span_info) ->
        Format.fprintf fmt "  %s%-*s %10.3f@,"
          (String.make (2 * s.depth) ' ')
          (max 1 (36 - (2 * s.depth)))
          s.sname
          (ms_of_ns (s.stop_ns - s.start_ns)))
      snap.spans
  end;
  let nonzero = List.filter (fun (_, v) -> v <> 0) snap.counters in
  if nonzero <> [] then begin
    Format.fprintf fmt "counters:@,";
    List.iter (fun (name, v) -> Format.fprintf fmt "  %-38s %12d@," name v) nonzero
  end;
  if snap.histograms <> [] then begin
    Format.fprintf fmt "histograms:@,";
    List.iter
      (fun (name, h) ->
        Format.fprintf fmt "  %-38s n=%d sum=%d min=%d mean=%.1f max=%d@," name h.h_count h.h_sum
          h.h_min h.h_mean h.h_max)
      snap.histograms
  end;
  Format.fprintf fmt "events: %d retained, %d dropped@]"
    (List.length snap.events)
    snap.dropped_events

let phase_label = function `Begin -> "B" | `End -> "E" | `Instant -> "i"

let args_json args = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)

let snapshot_to_json snap =
  Json.Obj
    [
      ( "spans",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("name", Json.Str s.sname);
                   ("start_ns", Json.Int s.start_ns);
                   ("dur_ns", Json.Int (s.stop_ns - s.start_ns));
                   ("depth", Json.Int s.depth);
                   ("sid", Json.Int s.sid);
                   ("parent", Json.Int s.parent);
                   ("lane", Json.Int s.lane);
                 ])
             snap.spans) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.counters));
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.h_count);
                     ("sum", Json.Int h.h_sum);
                     ("min", Json.Int h.h_min);
                     ("max", Json.Int h.h_max);
                     ("mean", Json.Float h.h_mean);
                     ( "buckets",
                       Json.List
                         (List.map
                            (fun (le, c) -> Json.Obj [ ("le", Json.Int le); ("n", Json.Int c) ])
                            h.h_buckets) );
                   ] ))
             snap.histograms) );
      ( "events",
        Json.List
          (List.map
             (fun (e : event) ->
               Json.Obj
                 [
                   ("seq", Json.Int e.seq);
                   ("ts_ns", Json.Int e.ts_ns);
                   ("name", Json.Str e.name);
                   ("phase", Json.Str (phase_label e.phase));
                   ("args", args_json e.args);
                 ])
             snap.events) );
      ("dropped_events", Json.Int snap.dropped_events);
    ]

let chrome_trace snap =
  let us ns = Json.Float (float_of_int ns /. 1e3) in
  let span_events =
    List.map
      (fun (s : span_info) ->
        Json.Obj
          [
            ("name", Json.Str s.sname);
            ("ph", Json.Str "X");
            ("ts", us s.start_ns);
            ("dur", us (s.stop_ns - s.start_ns));
            ("pid", Json.Int 1);
            ("tid", Json.Int (s.lane + 1));
            (* parent links let a consumer rebuild the causal tree even
               across lanes, where stack nesting alone is ambiguous *)
            ("args", Json.Obj [ ("sid", Json.Int s.sid); ("parent", Json.Int s.parent) ]);
          ])
      snap.spans
  in
  let instant_events =
    List.filter_map
      (fun (e : event) ->
        match e.phase with
        | `Instant ->
          Some
            (Json.Obj
               [
                 ("name", Json.Str e.name);
                 ("ph", Json.Str "i");
                 ("ts", us e.ts_ns);
                 ("s", Json.Str "t");
                 ("pid", Json.Int 1);
                 ("tid", Json.Int 1);
                 ("args", args_json e.args);
               ])
        | `Begin | `End -> None)
      snap.events
  in
  Json.List (span_events @ instant_events)
