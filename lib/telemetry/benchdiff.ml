type direction = Higher_better | Lower_better

type metric = {
  m_name : string;
  m_path : string list;
  m_direction : direction;
  m_tolerance_pct : float;
}

(* Tolerances are deliberately generous: CI runners and laptops differ by
   tens of percent run to run, and the gate exists to catch structural
   regressions (a 2x slowdown from an accidentally quadratic pass), not
   scheduler noise. Tighten per metric as history accumulates. *)
let tracked =
  [
    {
      m_name = "gateway.warm_over_cold_x";
      m_path = [ "sections"; "gateway"; "warm_over_cold_x" ];
      m_direction = Higher_better;
      m_tolerance_pct = 30.0;
    };
    {
      m_name = "gateway.cold_sessions_per_s";
      m_path = [ "sections"; "gateway"; "cold_sessions_per_s" ];
      m_direction = Higher_better;
      m_tolerance_pct = 40.0;
    };
    {
      m_name = "server.saturation_sessions_per_s";
      m_path = [ "sections"; "server"; "saturation_sessions_per_s" ];
      m_direction = Higher_better;
      m_tolerance_pct = 40.0;
    };
    {
      (* deterministic (not wall-clock): a restarted bench server replays
         its workload entirely from the recovered sealed cache, so any
         dip below 1.0 means recovery silently lost entries *)
      m_name = "server.warm_hit_ratio_after_restart";
      m_path = [ "sections"; "server"; "warm_hit_ratio_after_restart" ];
      m_direction = Higher_better;
      m_tolerance_pct = 5.0;
    };
    {
      m_name = "fuzz.verify_instr_per_sec";
      m_path = [ "sections"; "fuzz"; "verify_instr_per_sec" ];
      m_direction = Higher_better;
      m_tolerance_pct = 40.0;
    };
    {
      m_name = "table2.instr_per_sec";
      m_path = [ "sections"; "table2"; "instr_per_sec" ];
      m_direction = Higher_better;
      m_tolerance_pct = 40.0;
    };
    {
      m_name = "tier.trace_instr_per_sec";
      m_path = [ "sections"; "tier"; "trace_instr_per_sec" ];
      m_direction = Higher_better;
      m_tolerance_pct = 40.0;
    };
    {
      m_name = "verifier.witness_instr_per_sec";
      m_path = [ "sections"; "witness"; "witness_instr_per_sec" ];
      m_direction = Higher_better;
      m_tolerance_pct = 40.0;
    };
  ]

type verdict = Better | Worse | Neutral | Missing

let verdict_label = function
  | Better -> "better"
  | Worse -> "worse"
  | Neutral -> "neutral"
  | Missing -> "missing"

type comparison = {
  c_metric : metric;
  c_baseline : float option;
  c_current : float option;
  c_delta_pct : float option;
  c_verdict : verdict;
}

type report = {
  comparisons : comparison list;
  regressions : int;
  improvements : int;
  ok : bool;
}

let number_at json path =
  let rec go json = function
    | [] -> (
      match json with
      | Json.Int n -> Some (float_of_int n)
      | Json.Float f when Float.is_finite f -> Some f
      | _ -> None)
    | key :: rest -> (
      match Json.member key json with Some j -> go j rest | None -> None)
  in
  go json path

let median xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let compare_metric ~baseline ~current m =
  let base =
    match List.filter_map (fun doc -> number_at doc m.m_path) baseline with
    | [] -> None
    | xs -> Some (median xs)
  in
  let cur = number_at current m.m_path in
  match (base, cur) with
  | Some b, Some c when Float.abs b > 0.0 ->
    let delta = (c -. b) /. Float.abs b *. 100.0 in
    (* orient so positive [signed] is always an improvement *)
    let signed = match m.m_direction with Higher_better -> delta | Lower_better -> -.delta in
    let verdict =
      if signed < -.m.m_tolerance_pct then Worse
      else if signed > m.m_tolerance_pct then Better
      else Neutral
    in
    {
      c_metric = m;
      c_baseline = Some b;
      c_current = Some c;
      c_delta_pct = Some delta;
      c_verdict = verdict;
    }
  | _ ->
    { c_metric = m; c_baseline = base; c_current = cur; c_delta_pct = None; c_verdict = Missing }

let compare_docs ~baseline ~current =
  let comparisons = List.map (compare_metric ~baseline ~current) tracked in
  let count v = List.length (List.filter (fun c -> c.c_verdict = v) comparisons) in
  let regressions = count Worse in
  { comparisons; regressions; improvements = count Better; ok = regressions = 0 }

let opt_float = function Some f -> Json.Float f | None -> Json.Null

let report_to_json ~baseline_files ~current_file report =
  Json.Obj
    [
      ("schema", Json.Str "deflection-benchdiff/1");
      ("baseline_files", Json.List (List.map (fun f -> Json.Str f) baseline_files));
      ("baseline_runs", Json.Int (List.length baseline_files));
      ("current", Json.Str current_file);
      ( "metrics",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("name", Json.Str c.c_metric.m_name);
                   ( "direction",
                     Json.Str
                       (match c.c_metric.m_direction with
                       | Higher_better -> "higher"
                       | Lower_better -> "lower") );
                   ("tolerance_pct", Json.Float c.c_metric.m_tolerance_pct);
                   ("baseline", opt_float c.c_baseline);
                   ("current", opt_float c.c_current);
                   ("delta_pct", opt_float c.c_delta_pct);
                   ("verdict", Json.Str (verdict_label c.c_verdict));
                 ])
             report.comparisons) );
      ("regressions", Json.Int report.regressions);
      ("improvements", Json.Int report.improvements);
      ("ok", Json.Bool report.ok);
    ]
