(** Percentile-accurate log-bucketed histograms (HDR-style).

    The registry histograms in {!Telemetry} are power-of-two bucketed:
    cheap, but a quantile read off them can be off by a factor of two.
    This module is the latency-plane companion: values are bucketed with
    [2{^sub_bits}] linear sub-buckets per octave, so every recorded value
    [v] lands in a bucket whose width is at most [v / 2{^sub_bits}] — a
    bounded {e relative} error of [1/2{^sub_bits}] (≈ 3.1% at the default
    [sub_bits = 5]) for any quantile, at any magnitude.

    Instances with the same [sub_bits] merge exactly (bucket-wise sums):
    per-worker histograms recorded on separate domains combine at join
    into the same state one serial recorder would have produced, in any
    merge order — the associativity/commutativity property
    [suite_telemetry] pins. *)

type t

val create : ?sub_bits:int -> unit -> t
(** A fresh empty histogram. [sub_bits] (default 5, clamped to [0..8])
    sets the sub-bucket resolution: relative quantile error is bounded by
    [1 / 2{^sub_bits}]. *)

val sub_bits : t -> int

val observe : t -> int -> unit
(** Record one value. Negative values clamp to 0 (latencies are never
    negative; a clamped clock can still yield 0). *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** 0 when empty *)

val max_value : t -> int
(** 0 when empty *)

val mean : t -> float
(** 0.0 when empty *)

val quantile : t -> float -> int
(** [quantile t p] for [p] in [[0, 1]]: the recorded value of rank
    [ceil (p * count)] (clamped to [[1, count]]), reported as the upper
    bound of its bucket — never below the exact rank value and at most
    [1/2{^sub_bits}] relatively above it. [p <= 0] is the exact minimum,
    [p >= 1] the exact maximum. 0 when empty. *)

val merge : t -> t -> t
(** A new histogram holding both inputs' samples. The inputs are
    unchanged. @raise Invalid_argument when [sub_bits] differ. *)

val merge_into : into:t -> t -> unit
(** In-place variant of {!merge}. @raise Invalid_argument on a
    [sub_bits] mismatch. *)

val nonzero_buckets : t -> (int * int) list
(** [(inclusive upper bound, count)] for every non-empty bucket, in
    increasing bound order — the Prometheus exporter's cumulative
    [_bucket] series and the JSON export are both derived from this. *)

val equal : t -> t -> bool
(** Structural equality of the full state (resolution, buckets, count,
    sum, min, max) — what the merge-associativity tests compare. *)

val percentiles : (string * float) list
(** The standard export block: p50, p90, p95, p99, p99.9. *)

val to_json : t -> Json.t
(** [{"count", "sum", "min", "max", "mean", "p50", "p90", "p95", "p99",
    "p99_9", "buckets": [{"le", "n"}, ...]}]. *)

val pp : Format.formatter -> t -> unit
(** One line: count, min/mean/max and the percentile block. *)
