(** Telemetry substrate for the whole CCaaS pipeline.

    One {!t} is a registry of named {e counters} and {e histograms}, a
    stack-shaped recorder of hierarchical {e spans} (phase timings on a
    clamped-monotonic clock), and a pluggable {e event sink} for
    fine-grained trace events (AEXes, OCalls, verifier rejections, ...).

    The design goal is ~zero cost when observation is off:

    - the {!disabled} instance short-circuits spans and events on a single
      boolean test and never allocates;
    - an enabled instance with the {!Sink.Noop} sink (the default) records
      only spans and counters — per-event work reduces to one match on the
      sink constructor, so instrumentation hooks are safe to leave on in
      hot paths (guard any argument marshalling with {!tracing});
    - the {!Sink.ring} sink is a bounded ring buffer, so tracing a
      long-running session is allocation-cheap and can never grow without
      bound — old events are overwritten and counted as dropped.

    Snapshots are immutable and feed three exporters: a pretty-printer, a
    JSON document, and a Chrome [trace_event] array loadable in
    [about://tracing] / Perfetto. *)

type t

type event = {
  seq : int;  (** global sequence number, strictly increasing per [t] *)
  ts_ns : int;
  name : string;
  phase : [ `Begin | `End | `Instant ];
  args : (string * string) list;
}

module Sink : sig
  type t

  val noop : t
  (** Drops every event. Near-zero cost: one constructor match. *)

  val ring : capacity:int -> t
  (** Bounded ring buffer; once full, each new event overwrites the oldest
      (counted as dropped). [capacity] must be positive. *)

  val custom : (event -> unit) -> t
  (** Deliver each event to a user callback (file writer, network
      exporter, ...). Observability can never affect the computation it
      observes: the first exception the callback raises marks the sink
      failed — the callback is never invoked again, subsequent events are
      counted as dropped ({!snapshot}[.dropped_events]) and no exception
      ever reaches the instrumented code. See {!sink_failed}. *)
end

val create : ?clock:(unit -> int) -> ?sink:Sink.t -> ?span_limit:int -> unit -> t
(** A fresh enabled registry. [clock] returns nanoseconds and defaults to
    a wall clock clamped to be non-decreasing; tests inject virtual
    clocks. [sink] defaults to {!Sink.noop}. [span_limit] (default 16384)
    bounds the completed-span log. *)

val disabled : t
(** The shared no-op instance: every operation returns immediately. Used
    as the default argument of instrumentation hooks across the stack. *)

val enabled : t -> bool

val now_ns : t -> int
(** Read the registry's clock (nanoseconds, clamped monotone by default;
    0 on {!disabled}). Instrumentation that accumulates sub-span phase
    durations into counters — finer than a span per call site would be
    economical — reads this directly; guard with {!enabled}. *)

val tracing : t -> bool
(** [true] iff events are actually retained (enabled and non-noop sink).
    Hot paths use this to skip argument marshalling entirely. *)

val set_sink : t -> Sink.t -> unit

val sink_failed : t -> bool
(** [true] iff the attached {!Sink.custom} sink has thrown and been
    poisoned (graceful degradation: the session verdict is unaffected,
    only events are lost). Always [false] for noop/ring sinks. *)

(** {2 Counters} *)

type counter

val counter : t -> string -> counter
(** Find or register the named counter (pre-resolve outside hot loops). *)

val add : counter -> int -> unit
val incr : counter -> unit
val counter_value : counter -> int

val count : t -> string -> int -> unit
(** One-shot [add (counter t name) n] for cold paths. *)

val counter_total : t -> string -> int
(** Current value of a named counter, 0 when unregistered. *)

(** {2 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** Find or register; power-of-two buckets (bucket [i>0] holds values in
    ([2{^i-1}], [2{^i}]], bucket 0 holds values ≤ 1). *)

val observe : histogram -> int -> unit

type hist_summary = {
  h_count : int;
  h_sum : int;
  h_min : int;  (** 0 when empty *)
  h_max : int;  (** 0 when empty *)
  h_mean : float;  (** 0.0 when empty *)
  h_buckets : (int * int) list;  (** (inclusive upper bound, count), non-empty buckets only *)
}

val hist_snapshot : histogram -> hist_summary

(** {2 Spans and events} *)

val span : t -> string -> (unit -> 'a) -> 'a
(** Time [f] as a span nested under any currently-open span (exceptions
    still close the span). Emits [`Begin]/[`End] events to the sink and
    appends a {!span_info} record on completion. On {!disabled} this is
    exactly [f ()]. *)

val event : t -> ?args:(string * string) list -> string -> unit
(** Record an instant event to the sink. Callers paying to build [args]
    should guard with {!tracing}. *)

type span_info = {
  sname : string;
  start_ns : int;
  stop_ns : int;
  depth : int;  (** nesting depth at the time the span opened (root = 0) *)
  start_seq : int;  (** position in global start order *)
  sid : int;  (** span id, unique and nonzero within its snapshot *)
  parent : int;  (** sid of the enclosing span, 0 for a root span *)
  lane : int;  (** worker lane after {!graft} (root registry = 0) *)
}

(** {2 Snapshots} *)

type snapshot = {
  spans : span_info list;  (** in start order *)
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_summary) list;  (** sorted by name *)
  events : event list;  (** oldest retained first *)
  dropped_events : int;
}

val snapshot : t -> snapshot
(** Immutable copy of the current state (spans still open are omitted). *)

val find_span : snapshot -> string -> span_info option
val span_names : snapshot -> string list
(** Distinct span names in start order. *)

val graft : root:snapshot -> lanes:(string * snapshot list) list -> snapshot
(** Merge per-worker snapshots into one causal tree under [root]'s
    outermost span. Lane [i] contributes a synthetic wrapper span (named
    by its label, spanning its children's time range, [lane = i + 1])
    parented to the root span; every top-level span of every child
    snapshot is re-parented to its lane wrapper and nested spans keep
    their relative links. Span ids and sequence numbers are reissued
    globally (root first, then lane order), so the result is one
    consistent snapshot: every span's [parent] chain terminates at the
    root batch span. Counters and histograms are summed across all
    inputs; events are concatenated under the same global sequence. *)

(** {2 Exporters} *)

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable span tree, counters, histograms, event tail. *)

val snapshot_to_json : snapshot -> Json.t
(** [{"spans": [...], "counters": {...}, "histograms": {...},
     "events": [...], "dropped_events": n}]. *)

val chrome_trace : snapshot -> Json.t
(** Chrome [trace_event] array: spans as complete ("ph":"X") events,
    instants as "ph":"i" — loadable in about://tracing / Perfetto. *)
