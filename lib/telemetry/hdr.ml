(* Log-bucketed histogram with [2^sub_bits] linear sub-buckets per
   octave. Values below 2^sub_bits are bucketed exactly (width-1
   buckets); above that, a value with most-significant bit m lands in one
   of 2^sub_bits equal-width buckets spanning [2^m, 2^(m+1)), so bucket
   width / bucket bound <= 1 / 2^sub_bits everywhere. *)

type t = {
  sub_bits : int;
  sub_count : int;  (* 1 lsl sub_bits *)
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?(sub_bits = 5) () =
  let sub_bits = max 0 (min 8 sub_bits) in
  let sub_count = 1 lsl sub_bits in
  (* highest representable msb on a 63-bit OCaml int is 61 for positive
     values after the tag; size for msb up to 62 to be safe *)
  let octaves = 63 - sub_bits in
  {
    sub_bits;
    sub_count;
    buckets = Array.make ((octaves + 2) * sub_count) 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

let sub_bits t = t.sub_bits

let msb v =
  let rec go v acc = if v > 1 then go (v lsr 1) (acc + 1) else acc in
  go v 0

let index t v =
  if v < t.sub_count then v
  else begin
    let shift = msb v - t.sub_bits in
    (* v lsr shift is in [sub_count, 2*sub_count) *)
    ((shift + 1) * t.sub_count) + (v lsr shift) - t.sub_count
  end

(* inclusive upper bound of bucket [i] *)
let bound t i =
  if i < t.sub_count then i
  else begin
    let shift = (i / t.sub_count) - 1 in
    let sub = i mod t.sub_count in
    ((t.sub_count + sub + 1) lsl shift) - 1
  end

let observe t v =
  let v = max 0 v in
  t.buckets.(index t v) <- t.buckets.(index t v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = if t.count = 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let quantile t p =
  if t.count = 0 then 0
  else if p <= 0.0 then min_value t
  else if p >= 1.0 then max_value t
  else begin
    let rank = max 1 (min t.count (int_of_float (ceil (p *. float_of_int t.count)))) in
    let n = Array.length t.buckets in
    let rec walk i seen =
      if i >= n then max_value t
      else begin
        let seen = seen + t.buckets.(i) in
        if seen >= rank then
          (* clamp to the recorded extremes: the first/last occupied
             bucket's bound can overshoot the exact min/max *)
          max (min_value t) (min (bound t i) (max_value t))
        else walk (i + 1) seen
      end
    in
    walk 0 0
  end

let check_compatible a b =
  if a.sub_bits <> b.sub_bits then
    invalid_arg
      (Printf.sprintf "Hdr.merge: sub_bits mismatch (%d vs %d)" a.sub_bits b.sub_bits)

let merge_into ~into src =
  check_compatible into src;
  Array.iteri (fun i n -> if n > 0 then into.buckets.(i) <- into.buckets.(i) + n) src.buckets;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let merge a b =
  check_compatible a b;
  let t = create ~sub_bits:a.sub_bits () in
  merge_into ~into:t a;
  merge_into ~into:t b;
  t

let nonzero_buckets t =
  let acc = ref [] in
  for i = Array.length t.buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (bound t i, t.buckets.(i)) :: !acc
  done;
  !acc

let equal a b =
  a.sub_bits = b.sub_bits && a.count = b.count && a.sum = b.sum
  && (a.count = 0 || (a.min_v = b.min_v && a.max_v = b.max_v))
  && nonzero_buckets a = nonzero_buckets b

let percentiles =
  [ ("p50", 0.50); ("p90", 0.90); ("p95", 0.95); ("p99", 0.99); ("p99_9", 0.999) ]

let to_json t =
  Json.Obj
    ([
       ("count", Json.Int t.count);
       ("sum", Json.Int t.sum);
       ("min", Json.Int (min_value t));
       ("max", Json.Int (max_value t));
       ("mean", Json.Float (mean t));
     ]
    @ List.map (fun (name, p) -> (name, Json.Int (quantile t p))) percentiles
    @ [
        ( "buckets",
          Json.List
            (List.map
               (fun (le, n) -> Json.Obj [ ("le", Json.Int le); ("n", Json.Int n) ])
               (nonzero_buckets t)) );
      ])

let pp fmt t =
  if t.count = 0 then Format.fprintf fmt "empty"
  else begin
    Format.fprintf fmt "n=%d min=%d mean=%.1f max=%d" t.count (min_value t) (mean t)
      (max_value t);
    List.iter (fun (name, p) -> Format.fprintf fmt " %s=%d" name (quantile t p)) percentiles
  end
