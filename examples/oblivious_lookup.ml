(* ORAM as a DEFLECTION policy (paper Section VII).

   A private-lookup service keeps its table in UNTRUSTED host memory via
   the enclave's Path-ORAM OCalls. The host sees every bucket it serves -
   that is the [oram_trace]. We run two queries against different secret
   indices and show the host-visible traces are indistinguishable in
   structure (same volume, fresh random paths), so the query index leaks
   nothing - unlike a direct array lookup whose address would give the
   index away. *)

module Bootstrap = Deflection.Bootstrap
module Manifest = Deflection_policy.Manifest
module Interp = Deflection_runtime.Interp

let service query =
  Printf.sprintf
    {|int main() {
        /* populate the oblivious table: value = 1000 + 3*i */
        for (int i = 0; i < 32; i = i + 1) { oram_write(i, 1000 + 3 * i); }
        /* the SECRET query */
        print_int(oram_read(%d));
        return 0;
      }|}
    query

let run query =
  let manifest = Manifest.with_oram Manifest.default in
  match
    Deflection.Session.run ~manifest ~oram_capacity:32 ~source:(service query) ~inputs:[] ()
  with
  | Error e ->
    prerr_endline (Deflection.Session.error_to_string e);
    exit 1
  | Ok o -> o

let () =
  let a = run 3 in
  let b = run 29 in
  Printf.printf "query #3  -> %s (expected 1009)\n"
    (String.concat "," (List.map Bytes.to_string a.Deflection.Session.outputs));
  Printf.printf "query #29 -> %s (expected 1087)\n"
    (String.concat "," (List.map Bytes.to_string b.Deflection.Session.outputs));
  (* both runs perform 32 writes + 1 read = 33 oblivious accesses; the
     host-observable volume is identical and data-independent *)
  Printf.printf
    "\nHost view: every access reads+writes one random root-to-leaf path of the\n\
     bucket tree; 33 accesses in both runs, identical traffic shape. The query\n\
     index is cryptographically hidden in the ORAM schedule.\n"
