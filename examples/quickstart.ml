(* Quickstart: the full DEFLECTION protocol on a tiny private service. *)

let source = {|
int acc;

int square(int x) { return x * x; }

int main() {
  int buf[16];
  int n = recv(buf, 16);
  acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc + square(buf[i]);
  }
  print_int(acc);
  send(buf, n);
  return 0;
}
|}

let () =
  let input = Bytes.of_string "\001\002\003\004" in
  match Deflection.Session.run ~source ~inputs:[ input ] () with
  | Error e ->
    prerr_endline ("session failed: " ^ Deflection.Session.error_to_string e);
    exit 1
  | Ok o ->
    Format.printf "verifier: %a@." Deflection.Session.Verifier.pp_report o.verifier_report;
    Format.printf "exit: %a; cycles=%d instrs=%d ocalls=%d leaked=%d@."
      Deflection.Session.Interp.pp_exit_reason o.exit o.cycles o.instructions o.ocalls
      o.leaked_bytes;
    List.iteri
      (fun i out -> Format.printf "output[%d] = %S@." i (Bytes.to_string out))
      o.outputs
