(* Personal health analysis (one of the paper's motivating CCaaS services,
   Section III): a clinic uploads a patient's blood-pressure series; the
   provider's proprietary scoring logic classifies it without either side
   seeing the other's asset. The P0 wrapper pads the diagnosis record, so
   even its length reveals nothing. *)

let service =
  {|
int readings[64];

int classify(int* xs, int n) {
  /* proprietary risk model: weighted trend + variability */
  int sum = 0;
  for (int i = 0; i < n; i = i + 1) { sum = sum + xs[i]; }
  int mean = sum / n;
  int var = 0;
  for (int j = 0; j < n; j = j + 1) {
    int d = xs[j] - mean;
    var = var + d * d;
  }
  var = var / n;
  int trend = xs[n - 1] - xs[0];
  int risk = 0;
  if (mean > 140) { risk = risk + 2; }
  if (mean > 120) { risk = risk + 1; }
  if (var > 150) { risk = risk + 1; }
  if (trend > 15) { risk = risk + 1; }
  return risk;
}

int main() {
  int n = recv(readings, 64);
  if (n < 4) { exit(0 - 1); }
  int risk = classify(readings, n);
  print_int(risk);
  return 0;
}
|}

let series label values =
  let payload = Bytes.create (List.length values) in
  List.iteri (fun i v -> Bytes.set payload i (Char.chr v)) values;
  match Deflection.Session.run ~source:service ~inputs:[ payload ] () with
  | Error e ->
    prerr_endline (Deflection.Session.error_to_string e);
    exit 1
  | Ok o ->
    let risk = Bytes.to_string (List.hd o.Deflection.Session.outputs) in
    Printf.printf "%-22s -> risk score %s (leaked bytes: %d)\n" label risk
      o.Deflection.Session.leaked_bytes

let () =
  print_endline "In-enclave blood-pressure risk scoring (systolic, mmHg):";
  series "stable normotensive" [ 118; 121; 119; 122; 120; 118; 121; 119 ];
  series "hypertensive" [ 148; 151; 149; 153; 150; 149; 152; 154 ];
  series "rising trend" [ 119; 124; 128; 131; 135; 138; 141; 144 ]
