(* What DEFLECTION actually stops (paper Section VI-A, live).

   Three binaries that try to exfiltrate data, each checked against the
   bootstrap enclave:

   1. a naked out-of-enclave store  -> rejected statically by the verifier;
   2. the same logic, honestly instrumented by the (untrusted!) code
      generator -> accepted, but the Figure-5 annotation aborts the store
      at runtime, before a single byte escapes;
   3. the same binary loaded by a no-policy bootstrap -> the secret lands
      in attacker-visible host memory (the ground truth). *)

module Isa = Deflection_isa.Isa
module Asm = Deflection_isa.Asm
module Annot = Deflection_annot.Annot
module Instrument = Deflection_compiler.Instrument
module Objfile = Deflection_isa.Objfile
module Policy = Deflection_policy.Policy
module Layout = Deflection_enclave.Layout
module Bootstrap = Deflection.Bootstrap
module Attestation = Deflection_attestation.Attestation
module Channel = Deflection_crypto.Channel
module Interp = Deflection_runtime.Interp
open Isa

let layout = Layout.make Layout.small_config
let host_addr = layout.Layout.limit + 4096

let exfiltrate_items =
  [
    Asm.Label "main";
    Asm.Ins (Mov (Reg RBX, Imm (Int64.of_int host_addr)));
    Asm.Ins (Mov (Mem (mem_of_reg RBX), Imm 0x736563726574L)); (* "secret" *)
    Asm.Ins (Mov (Reg RAX, Imm 0L));
    Asm.Ins Hlt;
  ]

let build ~instrument ~policies =
  let items =
    if instrument then
      Instrument.run { Instrument.policies; ssa_q = 20 } ~fun_symbols:[ "main" ] ~entry:"main"
        exfiltrate_items
    else
      Annot.start_items ~entry:"main" @ exfiltrate_items
      @ List.concat_map Annot.abort_stub_items Annot.all_abort_reasons
      @ Annot.aex_handler_items
  in
  let assembled = Asm.assemble items in
  let keep = "main" :: Instrument.stub_symbols in
  {
    Objfile.text = assembled.Asm.code;
    data = Bytes.create 16;
    bss_size = 0;
    symbols =
      List.filter_map
        (fun (name, off) ->
          if List.mem name keep then
            Some { Objfile.name; section = Objfile.Text; offset = off; is_function = true }
          else None)
        assembled.Asm.label_offsets;
    relocs = assembled.Asm.relocs;
    branch_targets = [];
    entry = Annot.start_symbol;
    claimed_policies = [];
    ssa_q = 20;
    witness = None;
  }

let deliver ~policies obj =
  let platform = Attestation.Platform.create ~seed:5L in
  let ias = Attestation.Ias.for_platform platform in
  let config = { Bootstrap.default_config with Bootstrap.policies } in
  let enclave = Bootstrap.create ~config ~platform () in
  let m = Bootstrap.measurement enclave in
  let prng = Deflection_util.Prng.create 3L in
  let hello, kp = Attestation.Ratls.party_begin prng in
  let reply = Bootstrap.accept_party enclave ~role:Attestation.Ratls.Code_provider hello in
  let provider =
    Result.get_ok
      (Attestation.Ratls.party_complete kp ~role:Attestation.Ratls.Code_provider ~ias
         ~expected_measurement:m reply)
  in
  let hello_o, kp_o = Attestation.Ratls.party_begin prng in
  let reply_o = Bootstrap.accept_party enclave ~role:Attestation.Ratls.Data_owner hello_o in
  ignore
    (Result.get_ok
       (Attestation.Ratls.party_complete kp_o ~role:Attestation.Ratls.Data_owner ~ias
          ~expected_measurement:m reply_o));
  let sealed = Channel.seal provider.Attestation.Ratls.tx (Objfile.serialize obj) in
  (enclave, Bootstrap.ecall_receive_binary enclave sealed)

let () =
  print_endline "Scenario 1: naked out-of-enclave store vs the P1 verifier";
  let enclave1, result1 = deliver ~policies:Policy.Set.p1 (build ~instrument:false ~policies:Policy.Set.p1) in
  ignore enclave1;
  (match result1 with
  | Error e -> Printf.printf "  -> statically REJECTED: %s\n\n" (Bootstrap.ecall_error_to_string e)
  | Ok _ -> failwith "verifier accepted an unannotated store!");

  print_endline "Scenario 2: same logic, honestly instrumented, under P1 enforcement";
  let enclave2, result2 = deliver ~policies:Policy.Set.p1 (build ~instrument:true ~policies:Policy.Set.p1) in
  (match result2 with
  | Error e -> failwith ("expected acceptance: " ^ Bootstrap.ecall_error_to_string e)
  | Ok (report, _) ->
    Format.printf "  -> accepted (%a)@." Deflection.Session.Verifier.pp_report report;
    (match Bootstrap.run enclave2 with
    | Ok stats ->
      Format.printf "  -> runtime: %a, %d bytes leaked\n@." Interp.pp_exit_reason
        stats.Bootstrap.exit stats.Bootstrap.leaked_bytes;
      assert (stats.Bootstrap.leaked_bytes = 0)
    | Error e -> failwith (Bootstrap.ecall_error_to_string e)));

  print_endline "Scenario 3: ground truth - a no-policy bootstrap loads it blindly";
  let enclave3, result3 =
    deliver ~policies:Policy.Set.none (build ~instrument:false ~policies:Policy.Set.none)
  in
  (match result3 with
  | Error e -> failwith ("unexpected rejection: " ^ Bootstrap.ecall_error_to_string e)
  | Ok _ ->
    (match Bootstrap.run enclave3 with
    | Ok stats ->
      Format.printf "  -> runtime: %a, %d bytes LEAKED to host memory@." Interp.pp_exit_reason
        stats.Bootstrap.exit stats.Bootstrap.leaked_bytes;
      assert (stats.Bootstrap.leaked_bytes > 0)
    | Error e -> failwith (Bootstrap.ecall_error_to_string e)));
  print_endline "\nDEFLECTION: the same attack, stopped twice; the baseline shows it was real."
