(* Sensitive genome-data analysis (the paper's first macro-benchmark).

   A biotech company offers a proprietary alignment service; a hospital
   owns patient genome sequences. Neither reveals their asset: the service
   binary goes to the enclave sealed, the sequences go sealed, only the
   alignment score comes back (sealed to the hospital).

   The in-enclave result is checked against a local reference
   implementation of Needleman-Wunsch. *)

module W = Deflection_workloads

let () =
  let n = 120 in
  let payload = W.Genome.fasta_input ~seed:2026L ~n in
  let seq1 = Bytes.sub payload 0 n and seq2 = Bytes.sub payload n n in
  Printf.printf "Hospital uploads two %d-nucleotide sequences (sealed):\n  %s...\n  %s...\n" n
    (Bytes.sub_string seq1 0 40) (Bytes.sub_string seq2 0 40);
  let source = W.Genome.alignment_source ~n in
  match Deflection.Session.run ~source ~inputs:[ seq1; seq2 ] () with
  | Error e ->
    prerr_endline ("session failed: " ^ Deflection.Session.error_to_string e);
    exit 1
  | Ok o ->
    Format.printf "verifier accepted the proprietary binary: %a@."
      Deflection.Session.Verifier.pp_report o.verifier_report;
    let score =
      match o.outputs with
      | [ s ] -> int_of_string (Bytes.to_string s)
      | _ -> failwith "expected one output record"
    in
    let expected = W.Genome.expected_alignment_score payload ~n in
    Format.printf "alignment score from the enclave: %d (local reference: %d) -> %s@." score
      expected
      (if score = expected then "MATCH" else "MISMATCH");
    Format.printf "execution: %d instructions, %d virtual cycles, %d bytes leaked@."
      o.instructions o.cycles o.leaked_bytes;
    if score <> expected || o.leaked_bytes <> 0 then exit 1
