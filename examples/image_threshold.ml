(* Image editing as a service (another Section-III scenario): the client
   uploads a small grayscale image; the provider's private filter
   (adaptive threshold + 3x3 erosion) runs in-enclave and the processed
   pixels come back sealed. The example renders both images as ASCII to
   show the computation really happened on the secret data. *)

let width = 24
let height = 12

let service =
  Printf.sprintf
    {|
int img[512];
int out[512];

int main() {
  int w = %d;
  int h = %d;
  int n = recv(img, w * h);
  if (n != w * h) { exit(0 - 1); }
  /* adaptive threshold at the mean */
  int sum = 0;
  for (int i = 0; i < n; i = i + 1) { sum = sum + img[i]; }
  int mean = sum / n;
  for (int j = 0; j < n; j = j + 1) {
    if (img[j] > mean) { out[j] = 1; } else { out[j] = 0; }
  }
  for (int j2 = 0; j2 < n; j2 = j2 + 1) { img[j2] = out[j2]; }
  /* 3x3 erosion pass (proprietary denoising) */
  for (int y = 1; y < h - 1; y = y + 1) {
    for (int x = 1; x < w - 1; x = x + 1) {
      int on = out[y * w + x];
      int neighbors = out[(y - 1) * w + x] + out[(y + 1) * w + x]
        + out[y * w + x - 1] + out[y * w + x + 1];
      if (on && neighbors < 2) { img[y * w + x] = 0; } else { img[y * w + x] = on; }
    }
  }
  send(img, w * h);
  return 0;
}
|}
    width height

(* a synthetic "photo": bright disc on a noisy background *)
let input_image () =
  let prng = Deflection_util.Prng.create 99L in
  let b = Bytes.create (width * height) in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let dx = x - (width / 2) and dy = 2 * (y - (height / 2)) in
      let bright = if (dx * dx) + (dy * dy) < 36 then 180 else 40 in
      let noise = Deflection_util.Prng.int prng 50 in
      Bytes.set b ((y * width) + x) (Char.chr (min 255 (bright + noise)))
    done
  done;
  b

let render label pixels threshold =
  Printf.printf "%s\n" label;
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let v = Char.code (Bytes.get pixels ((y * width) + x)) in
      print_char (if v > threshold then '#' else '.')
    done;
    print_newline ()
  done

let () =
  let img = input_image () in
  render "input (secret patient scan):" img 100;
  match Deflection.Session.run ~source:service ~inputs:[ img ] () with
  | Error e ->
    prerr_endline (Deflection.Session.error_to_string e);
    exit 1
  | Ok o ->
    let out = List.hd o.Deflection.Session.outputs in
    render "\nprocessed in-enclave (threshold + erosion):" out 0;
    Printf.printf "\n%d sealed bytes returned; %d bytes leaked to the host.\n"
      (Bytes.length out) o.Deflection.Session.leaked_bytes
